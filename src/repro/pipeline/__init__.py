"""Artifact pipeline: memoized intermediates + DAG-resolved experiments.

See :mod:`repro.pipeline.store` (two-tier memoization),
:mod:`repro.pipeline.graph` (declarative specs + DAG),
:mod:`repro.pipeline.registry` (the full experiment registry), and
:mod:`repro.pipeline.runner` (parallel run-all with timing).
"""

from repro.pipeline.graph import ArtifactSpec, DependencyGraph, ProducerSpec
from repro.pipeline.registry import ARTIFACTS, PRODUCERS, default_graph
from repro.pipeline.runner import (
    ArtifactTiming,
    PipelineReport,
    PipelineResult,
    run_pipeline,
    validate_artifact_kwargs,
)
from repro.pipeline.store import ArtifactStore, CacheKey, StoreStats, params_hash

__all__ = [
    "ARTIFACTS",
    "PRODUCERS",
    "ArtifactSpec",
    "ArtifactStore",
    "ArtifactTiming",
    "CacheKey",
    "DependencyGraph",
    "PipelineReport",
    "PipelineResult",
    "ProducerSpec",
    "StoreStats",
    "default_graph",
    "params_hash",
    "run_pipeline",
    "validate_artifact_kwargs",
]
