"""DAG-resolving pipeline runner: compute shared intermediates once,
schedule independent artifacts concurrently, and report timings.

``run_pipeline`` executes any subset of the registry against one
:class:`~repro.pipeline.store.ArtifactStore`.  Artifacts are submitted
to a thread pool (``jobs``); each resolves its producer dependencies
through the store, whose single-flight locking makes every producer
compute exactly once per ``(seed, params)`` regardless of job count.
Output ordering is deterministic (registry id order) at any job count,
and per-artifact results are identical to serial execution because the
artifacts share no mutable state beyond the memoized producer values.

The runner is crash-safe and self-healing:

* every producer computes under a :class:`~repro.pipeline.supervisor.
  Supervisor` (``retries``/``timeout_s``), with attempt counts and
  exception digests recorded in the :class:`PipelineReport`;
* ``keep_going=True`` quarantines a failing artifact — and everything
  downstream of its failed producer — into structured
  :class:`~repro.pipeline.supervisor.FailedArtifact` records instead
  of aborting the sweep;
* without ``keep_going``, failures raise :class:`PipelineError`, which
  names the artifact and carries the partial report so completed
  timings are never lost;
* a :class:`~repro.pipeline.journal.RunJournal` (when provided)
  records start/commit events durably; ``resume=True`` skips
  journal-committed artifacts, loading their persisted outputs, and
  recomputes only in-flight or failed ones — byte-identical final
  outputs at any interruption point.
"""

from __future__ import annotations

import inspect
import pickle
import tempfile
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, \
    ThreadPoolExecutor, wait
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping

from repro.core.persistence import CacheCorruptionError
from repro.pipeline.graph import DependencyGraph
from repro.pipeline.journal import RunJournal
from repro.pipeline.registry import default_graph
from repro.pipeline.store import ArtifactStore, StoreStats
from repro.pipeline.supervisor import (
    FailedArtifact,
    Supervisor,
    SupervisorPolicy,
    SupervisorStats,
    failed_artifact_from,
)


@dataclass(frozen=True)
class ArtifactTiming:
    """Wall time, dependency list, and outcome for one artifact build."""

    artifact: str
    seconds: float
    producers: tuple[str, ...]
    #: "built" | "resumed" (loaded from the run journal) | "failed".
    status: str = "built"


class PipelineError(RuntimeError):
    """A pipeline run aborted on a failing artifact (fail-fast mode).

    Carries the artifact id and the partial :class:`PipelineReport`, so
    completed work (timings, cache counters, other in-flight artifacts
    that ran to completion) survives into ``--timing-json`` even when
    the sweep dies.
    """

    def __init__(self, artifact: str, report: "PipelineReport",
                 cause: BaseException):
        super().__init__(
            f"artifact {artifact!r} failed: "
            f"{type(cause).__name__}: {cause}")
        self.artifact = artifact
        self.report = report


@dataclass
class PipelineReport:
    """Machine-readable account of one pipeline run."""

    seed: int
    jobs: int
    smoke: bool
    wall_seconds: float = 0.0
    run_id: str | None = None
    timings: list[ArtifactTiming] = field(default_factory=list)
    store_stats: StoreStats = field(default_factory=StoreStats)
    failed: list[FailedArtifact] = field(default_factory=list)
    #: Artifacts skipped because the journal already committed them.
    resumed: tuple[str, ...] = ()
    supervisor_stats: SupervisorStats = field(
        default_factory=SupervisorStats)

    def to_records(self) -> list[dict[str, Any]]:
        """Flat per-artifact records plus per-producer cache records."""
        records: list[dict[str, Any]] = []
        for timing in self.timings:
            records.append({
                "kind": "artifact",
                "artifact": timing.artifact,
                "seconds": timing.seconds,
                "producers": list(timing.producers),
                "status": timing.status,
                "seed": self.seed,
                "jobs": self.jobs,
                "smoke": self.smoke,
            })
        stats = self.store_stats
        producers = sorted(set(stats.misses_by_producer)
                           | set(stats.hits_by_producer)
                           | set(stats.corruptions_by_producer))
        for producer in producers:
            records.append({
                "kind": "producer",
                "producer": producer,
                "cache_hits": stats.hits_by_producer.get(producer, 0),
                "cache_misses": stats.misses_by_producer.get(producer, 0),
                "compute_seconds": stats.compute_seconds.get(producer, 0.0),
                "disk_corruptions": stats.corruptions_by_producer.get(
                    producer, 0),
                "seed": self.seed,
                "jobs": self.jobs,
                "smoke": self.smoke,
            })
        for failure in self.failed:
            records.append(failure.to_record())
        sup = self.supervisor_stats
        records.append({
            "kind": "run",
            "wall_seconds": self.wall_seconds,
            "run_id": self.run_id,
            "cache_hits": stats.hits,
            "cache_misses": stats.misses,
            "disk_hits": stats.disk_hits,
            "disk_corruptions": stats.disk_corruptions,
            "resumed_artifacts": len(self.resumed),
            "failed_artifacts": len(self.failed),
            "attempts": sup.attempts,
            "retries": sup.retries,
            "recovered_producers": sup.recovered,
            "timeouts": sup.timeouts,
            "injected_faults": sup.injected_faults,
            "wasted_seconds": sup.wasted_seconds,
            "seed": self.seed,
            "jobs": self.jobs,
            "smoke": self.smoke,
        })
        return records


@dataclass
class PipelineResult:
    """Outputs (in deterministic registry order) plus the run report."""

    outputs: dict[str, Any]
    report: PipelineReport


def validate_artifact_kwargs(graph: DependencyGraph,
                             artifact_ids: tuple[str, ...],
                             kwargs: Mapping[str, Any]) -> None:
    """Check every artifact's callable accepts the forwarded kwargs.

    ``run_all`` used to forward ``**kwargs`` blindly and fail deep inside
    an arbitrary module; this surfaces the mismatch upfront, naming the
    artifact and the rejected keyword.
    """
    for artifact_id in artifact_ids:
        spec = graph.artifacts[artifact_id]
        try:
            signature = inspect.signature(spec.fn)
        except (TypeError, ValueError):  # builtins without signatures
            continue
        accepts_var_kw = any(
            p.kind is inspect.Parameter.VAR_KEYWORD
            for p in signature.parameters.values()
        )
        if accepts_var_kw:
            continue
        for name in ("seed", *kwargs):
            if name not in signature.parameters:
                raise TypeError(
                    f"artifact {artifact_id!r} "
                    f"({spec.fn.__module__}.{spec.fn.__qualname__}) does not "
                    f"accept keyword {name!r}; registered experiment "
                    f"callables must accept 'seed' and any kwargs passed "
                    f"to run_all/run_experiment"
                )


#: Executor kinds accepted by :func:`run_pipeline`.
EXECUTORS = ("thread", "process")


def _assert_picklable(graph: DependencyGraph,
                      extra_kwargs: Mapping[str, Any] | None,
                      faults: Any) -> None:
    """Fail fast, with a named culprit, before forking workers.

    The process executor ships the graph (producer/artifact callables by
    qualified name), the forwarded kwargs, and the fault injector to
    worker processes; a closure or lambda registered as a producer would
    otherwise die with an opaque pool error.
    """
    for label, value in (("graph", graph), ("extra_kwargs", extra_kwargs),
                         ("faults", faults)):
        try:
            pickle.dumps(value)
        except Exception as exc:
            raise TypeError(
                f"executor='process' requires picklable {label}: {exc}; "
                f"register module-level callables (no lambdas/closures) "
                f"or use executor='thread'") from exc


def _warm_producer(graph: DependencyGraph, producer_id: str, seed: int,
                   smoke: bool, cache_dir: str, retries: int,
                   timeout_s: float | None, backoff_base_s: float,
                   faults: Any) -> tuple[str, str | None, StoreStats,
                                         SupervisorStats]:
    """Worker-process entry: compute one producer into the disk cache.

    Dependencies resolved recursively hit the shared sha256-checksummed
    disk tier (the parent schedules in topological order, so they are
    already persisted).  Errors never cross the process boundary as
    exceptions — custom exception signatures may not unpickle — only as
    a string digest; the parent's serial assembly re-raises them with
    full fidelity through the normal supervisor path.
    """
    store = ArtifactStore(cache_dir, faults=faults)
    supervisor = Supervisor(
        SupervisorPolicy(retries=retries, timeout_s=timeout_s,
                         backoff_base_s=backoff_base_s),
        seed=seed, faults=faults)
    error: str | None = None
    try:
        graph.resolve_producer(producer_id, store, seed, smoke, supervisor)
    except BaseException as exc:
        error = f"{type(exc).__name__}: {exc}"
    return producer_id, error, store.stats, supervisor.stats


def _producer_prepass(graph: DependencyGraph,
                      artifact_ids: tuple[str, ...], seed: int, smoke: bool,
                      cache_dir: Path, jobs: int, retries: int,
                      timeout_s: float | None, backoff_base_s: float,
                      faults: Any, store: ArtifactStore,
                      supervisor: Supervisor) -> None:
    """Compute every needed producer exactly once across a process pool.

    Producers are submitted dependency-first: one is dispatched only
    when its deps have finished (and are therefore on disk), so each
    worker's recursive resolution is all disk hits.  Worker cache and
    containment counters merge into the parent's ``store`` and
    ``supervisor`` so reports (and the chaos recovery gate) see the real
    compute.  A producer that fails in a worker is simply left
    unwarmed — the parent's serial assembly recomputes it and applies
    the normal retry/quarantine/fail-fast semantics.
    """
    deps: dict[str, set[str]] = {}
    for artifact_id in artifact_ids:
        for pid in graph.producer_closure(artifact_id):
            if pid not in deps:
                deps[pid] = set(graph.producers[pid].deps.values())
    dependents: dict[str, list[str]] = {pid: [] for pid in deps}
    for pid, requires in deps.items():
        for dep in requires:
            dependents[dep].append(pid)
    waiting = {pid: set(requires) for pid, requires in deps.items()}
    ready = sorted(pid for pid, requires in waiting.items() if not requires)
    for pid in ready:
        del waiting[pid]

    with ProcessPoolExecutor(max_workers=jobs) as pool:
        def submit(pid: str):
            return pool.submit(_warm_producer, graph, pid, seed, smoke,
                               str(cache_dir), retries, timeout_s,
                               backoff_base_s, faults)

        in_flight = {submit(pid) for pid in ready}
        while in_flight:
            done, in_flight = wait(in_flight, return_when=FIRST_COMPLETED)
            for future in done:
                producer_id, _error, worker_store, worker_sup = (
                    future.result())
                store.merge_stats(worker_store)
                supervisor.merge_stats(worker_sup)
                for dependent in dependents[producer_id]:
                    pending = waiting.get(dependent)
                    if pending is None:
                        continue
                    pending.discard(producer_id)
                    if not pending:
                        del waiting[dependent]
                        in_flight.add(submit(dependent))


def run_pipeline(artifact_ids: tuple[str, ...] | None = None,
                 seed: int = 0,
                 jobs: int = 1,
                 smoke: bool = False,
                 store: ArtifactStore | None = None,
                 graph: DependencyGraph | None = None,
                 extra_kwargs: Mapping[str, Any] | None = None,
                 keep_going: bool = False,
                 retries: int = 0,
                 timeout_s: float | None = None,
                 backoff_base_s: float = 0.05,
                 faults: Any = None,
                 journal: RunJournal | None = None,
                 resume: bool = False,
                 executor: str = "thread",
                 ) -> PipelineResult:
    """Run artifacts through the memoizing DAG pipeline.

    ``jobs > 1`` builds independent artifacts concurrently; results and
    ordering are identical at any job count.  ``smoke`` switches every
    producer to its small-size parameter set (separate cache keys).

    ``executor`` selects the concurrency substrate for ``jobs > 1``:
    ``"thread"`` (the default) shares one in-memory store across a
    thread pool; ``"process"`` sidesteps the GIL by warming every
    needed producer exactly once across a :class:`ProcessPoolExecutor`
    (dependency-first, coordinated through the sha256-checksummed disk
    cache tier), then assembling artifacts serially in the parent from
    the warm cache — outputs are byte-identical to serial execution.

    Failure handling: each producer computes under a supervisor with
    ``retries`` extra attempts (seeded exponential backoff) and an
    optional per-attempt wall-clock ``timeout_s``.  With
    ``keep_going=True`` a permanently failing artifact is quarantined
    into ``report.failed`` and the sweep continues; otherwise the run
    raises :class:`PipelineError` carrying the partial report.

    Durability: pass a :class:`~repro.pipeline.journal.RunJournal` to
    record start/commit events; with ``resume=True``, artifacts the
    journal committed (with checksum-verified payloads) are loaded
    from disk instead of recomputed.  ``faults`` accepts a
    :class:`~repro.faults.FaultInjector` for chaos mode.
    """
    graph = graph or default_graph()
    if artifact_ids is None:
        artifact_ids = tuple(sorted(graph.artifacts))
    else:
        unknown = [a for a in artifact_ids if a not in graph.artifacts]
        if unknown:
            known = ", ".join(sorted(graph.artifacts))
            raise KeyError(
                f"unknown artifact {unknown[0]!r}; known: {known}")
    validate_artifact_kwargs(graph, artifact_ids, extra_kwargs or {})
    if executor not in EXECUTORS:
        raise ValueError(
            f"unknown executor {executor!r}; choose from {EXECUTORS}")
    if resume and journal is None:
        raise ValueError("resume=True requires a journal")
    store = store if store is not None else ArtifactStore(faults=faults)
    if faults is not None and store.faults is None:
        store.faults = faults
    jobs = max(1, int(jobs))

    supervisor = Supervisor(
        SupervisorPolicy(retries=retries, timeout_s=timeout_s,
                         backoff_base_s=backoff_base_s),
        seed=seed, faults=faults)

    committed: frozenset[str] = frozenset()
    if resume:
        committed = frozenset(journal.verified_committed())

    start = time.perf_counter()
    timings: dict[str, ArtifactTiming] = {}
    failures: dict[str, FailedArtifact] = {}
    resumed: list[str] = []
    results: dict[str, Any] = {}

    def build(artifact_id: str) -> Any:
        t0 = time.perf_counter()
        if artifact_id in committed:
            try:
                output = journal.load_committed_output(artifact_id)
            except CacheCorruptionError:
                pass  # verified above, but lost since: fall through
            else:
                timings[artifact_id] = ArtifactTiming(
                    artifact=artifact_id,
                    seconds=time.perf_counter() - t0,
                    producers=graph.producer_closure(artifact_id),
                    status="resumed",
                )
                resumed.append(artifact_id)
                return output
        if journal is not None:
            journal.record_start(artifact_id)
        try:
            output = graph.build_artifact(artifact_id, store, seed, smoke,
                                          extra_kwargs, supervisor)
        except Exception as exc:
            failure = failed_artifact_from(artifact_id, exc)
            timings[artifact_id] = ArtifactTiming(
                artifact=artifact_id,
                seconds=time.perf_counter() - t0,
                producers=graph.producer_closure(artifact_id),
                status="failed",
            )
            failures[artifact_id] = failure
            if journal is not None:
                journal.record_fail(artifact_id, failure.error_type,
                                    failure.error_digest)
            raise
        timings[artifact_id] = ArtifactTiming(
            artifact=artifact_id,
            seconds=time.perf_counter() - t0,
            producers=graph.producer_closure(artifact_id),
            status="built",
        )
        if journal is not None:
            journal.record_commit(artifact_id, output)
        return output

    def make_report() -> PipelineReport:
        return PipelineReport(
            seed=seed,
            jobs=jobs,
            smoke=smoke,
            wall_seconds=time.perf_counter() - start,
            run_id=journal.run_id if journal is not None else None,
            timings=[timings[a] for a in artifact_ids if a in timings],
            store_stats=store.stats,
            failed=[failures[a] for a in artifact_ids if a in failures],
            resumed=tuple(resumed),
            supervisor_stats=supervisor.stats,
        )

    if jobs > 1 and executor == "process":
        _assert_picklable(graph, extra_kwargs, faults)
        temp_cache = None
        if store.cache_dir is None:
            # Workers coordinate through the disk tier; a run without a
            # configured cache dir gets an ephemeral shared one.
            temp_cache = tempfile.TemporaryDirectory(prefix="repro-cache-")
            store.cache_dir = Path(temp_cache.name)
        try:
            _producer_prepass(
                graph,
                tuple(a for a in artifact_ids if a not in committed),
                seed, smoke, store.cache_dir, jobs, retries, timeout_s,
                backoff_base_s, faults, store, supervisor)
            # Assemble artifacts serially in the parent: producer
            # resolution is all warm-cache hits, journal/resume/failure
            # semantics are exactly the serial path's.
            for artifact_id in artifact_ids:
                try:
                    results[artifact_id] = build(artifact_id)
                except Exception as exc:
                    if not keep_going:
                        if journal is not None:
                            journal.record_run_end("failed")
                        raise PipelineError(artifact_id, make_report(),
                                            exc) from exc
        finally:
            if temp_cache is not None:
                store.cache_dir = None
                temp_cache.cleanup()
    elif jobs == 1:
        for artifact_id in artifact_ids:
            try:
                results[artifact_id] = build(artifact_id)
            except Exception as exc:
                if not keep_going:
                    if journal is not None:
                        journal.record_run_end("failed")
                    raise PipelineError(artifact_id, make_report(),
                                        exc) from exc
    else:
        first_error: tuple[str, BaseException] | None = None
        with ThreadPoolExecutor(max_workers=jobs) as pool:
            futures = {artifact: pool.submit(build, artifact)
                       for artifact in artifact_ids}
            # Always drain every future: in-flight artifacts run to
            # completion and keep their timings even when one fails.
            for artifact_id in artifact_ids:
                try:
                    results[artifact_id] = (
                        futures[artifact_id].result())
                except Exception as exc:
                    first_error = first_error or (artifact_id, exc)
        if first_error is not None and not keep_going:
            artifact_id, exc = first_error
            if journal is not None:
                journal.record_run_end("failed")
            raise PipelineError(artifact_id, make_report(), exc) from exc

    # dict comprehension in registry order: deterministic output order.
    outputs = {artifact: results[artifact]
               for artifact in artifact_ids if artifact in results}
    report = make_report()
    if journal is not None:
        journal.record_run_end("failed" if report.failed else "ok")
    return PipelineResult(outputs=outputs, report=report)
