"""DAG-resolving pipeline runner: compute shared intermediates once,
schedule independent artifacts concurrently, and report timings.

``run_pipeline`` executes any subset of the registry against one
:class:`~repro.pipeline.store.ArtifactStore`.  Artifacts are submitted
to a thread pool (``jobs``); each resolves its producer dependencies
through the store, whose single-flight locking makes every producer
compute exactly once per ``(seed, params)`` regardless of job count.
Output ordering is deterministic (registry id order) at any job count,
and per-artifact results are identical to serial execution because the
artifacts share no mutable state beyond the memoized producer values.
"""

from __future__ import annotations

import inspect
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.pipeline.graph import DependencyGraph
from repro.pipeline.registry import default_graph
from repro.pipeline.store import ArtifactStore, StoreStats


@dataclass(frozen=True)
class ArtifactTiming:
    """Wall time and dependency list for one artifact build."""

    artifact: str
    seconds: float
    producers: tuple[str, ...]


@dataclass
class PipelineReport:
    """Machine-readable account of one pipeline run."""

    seed: int
    jobs: int
    smoke: bool
    wall_seconds: float = 0.0
    timings: list[ArtifactTiming] = field(default_factory=list)
    store_stats: StoreStats = field(default_factory=StoreStats)

    def to_records(self) -> list[dict[str, Any]]:
        """Flat per-artifact records plus per-producer cache records."""
        records: list[dict[str, Any]] = []
        for timing in self.timings:
            records.append({
                "kind": "artifact",
                "artifact": timing.artifact,
                "seconds": timing.seconds,
                "producers": list(timing.producers),
                "seed": self.seed,
                "jobs": self.jobs,
                "smoke": self.smoke,
            })
        stats = self.store_stats
        producers = sorted(set(stats.misses_by_producer)
                           | set(stats.hits_by_producer))
        for producer in producers:
            records.append({
                "kind": "producer",
                "producer": producer,
                "cache_hits": stats.hits_by_producer.get(producer, 0),
                "cache_misses": stats.misses_by_producer.get(producer, 0),
                "compute_seconds": stats.compute_seconds.get(producer, 0.0),
                "seed": self.seed,
                "jobs": self.jobs,
                "smoke": self.smoke,
            })
        records.append({
            "kind": "run",
            "wall_seconds": self.wall_seconds,
            "cache_hits": stats.hits,
            "cache_misses": stats.misses,
            "disk_hits": stats.disk_hits,
            "seed": self.seed,
            "jobs": self.jobs,
            "smoke": self.smoke,
        })
        return records


@dataclass
class PipelineResult:
    """Outputs (in deterministic registry order) plus the run report."""

    outputs: dict[str, Any]
    report: PipelineReport


def validate_artifact_kwargs(graph: DependencyGraph,
                             artifact_ids: tuple[str, ...],
                             kwargs: Mapping[str, Any]) -> None:
    """Check every artifact's callable accepts the forwarded kwargs.

    ``run_all`` used to forward ``**kwargs`` blindly and fail deep inside
    an arbitrary module; this surfaces the mismatch upfront, naming the
    artifact and the rejected keyword.
    """
    for artifact_id in artifact_ids:
        spec = graph.artifacts[artifact_id]
        try:
            signature = inspect.signature(spec.fn)
        except (TypeError, ValueError):  # builtins without signatures
            continue
        accepts_var_kw = any(
            p.kind is inspect.Parameter.VAR_KEYWORD
            for p in signature.parameters.values()
        )
        if accepts_var_kw:
            continue
        for name in ("seed", *kwargs):
            if name not in signature.parameters:
                raise TypeError(
                    f"artifact {artifact_id!r} "
                    f"({spec.fn.__module__}.{spec.fn.__qualname__}) does not "
                    f"accept keyword {name!r}; registered experiment "
                    f"callables must accept 'seed' and any kwargs passed "
                    f"to run_all/run_experiment"
                )


def run_pipeline(artifact_ids: tuple[str, ...] | None = None,
                 seed: int = 0,
                 jobs: int = 1,
                 smoke: bool = False,
                 store: ArtifactStore | None = None,
                 graph: DependencyGraph | None = None,
                 extra_kwargs: Mapping[str, Any] | None = None,
                 ) -> PipelineResult:
    """Run artifacts through the memoizing DAG pipeline.

    ``jobs > 1`` builds independent artifacts concurrently; results and
    ordering are identical at any job count.  ``smoke`` switches every
    producer to its small-size parameter set (separate cache keys).
    """
    graph = graph or default_graph()
    if artifact_ids is None:
        artifact_ids = tuple(sorted(graph.artifacts))
    else:
        unknown = [a for a in artifact_ids if a not in graph.artifacts]
        if unknown:
            known = ", ".join(sorted(graph.artifacts))
            raise KeyError(
                f"unknown artifact {unknown[0]!r}; known: {known}")
    validate_artifact_kwargs(graph, artifact_ids, extra_kwargs or {})
    store = store if store is not None else ArtifactStore()
    jobs = max(1, int(jobs))

    start = time.perf_counter()
    timings: dict[str, ArtifactTiming] = {}

    def build(artifact_id: str) -> Any:
        t0 = time.perf_counter()
        output = graph.build_artifact(artifact_id, store, seed, smoke,
                                      extra_kwargs)
        timings[artifact_id] = ArtifactTiming(
            artifact=artifact_id,
            seconds=time.perf_counter() - t0,
            producers=graph.producer_closure(artifact_id),
        )
        return output

    if jobs == 1:
        outputs = {artifact: build(artifact) for artifact in artifact_ids}
    else:
        with ThreadPoolExecutor(max_workers=jobs) as pool:
            futures = {artifact: pool.submit(build, artifact)
                       for artifact in artifact_ids}
            # dict insertion order == registry order: deterministic.
            outputs = {artifact: futures[artifact].result()
                       for artifact in artifact_ids}

    report = PipelineReport(
        seed=seed,
        jobs=jobs,
        smoke=smoke,
        wall_seconds=time.perf_counter() - start,
        timings=[timings[a] for a in artifact_ids],
        store_stats=store.stats,
    )
    return PipelineResult(outputs=outputs, report=report)
