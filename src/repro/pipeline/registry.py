"""The declarative experiment registry: producers, artifacts, and deps.

Every paper artifact (Figs. 1-14, Tables II-XXIII, plus the extension
studies) is declared here as an :class:`ArtifactSpec` naming the shared
intermediates it needs, instead of recomputing them inside
``figureN()``/``tableN()``.  The expensive intermediates — the Section
IV characterization sweeps, the Section V tradeoff grid, evaluator
runs, serving sweeps — are :class:`ProducerSpec` entries memoized in the
:class:`~repro.pipeline.store.ArtifactStore`, so a full ``run_all``
computes each exactly once per seed.

Producers carry ``smoke_params`` (small sizes) for the fast CI profile;
the full/smoke parameter sets hash into different store keys.
"""

from __future__ import annotations

from repro.experiments import (
    batch_latency,
    cpu_vs_gpu,
    deadline_control,
    decode_latency,
    fidelity,
    fleet_study,
    frameworks,
    hybrid_scaling,
    latency_validation,
    mmlu_full,
    motivation,
    natural_plan,
    optimizations,
    parallel_scaling,
    pd_ratio,
    planner_study,
    prefix_caching,
    power_energy,
    power_modes,
    prefill_latency,
    quantization,
    resilience,
    serving_study,
    takeaways,
    tiering_study,
    tradeoff_frontier,
)
from repro.pipeline.graph import ArtifactSpec, DependencyGraph, ProducerSpec

#: Shared memoized intermediates, by id.
PRODUCERS: dict[str, ProducerSpec] = {
    spec.id: spec for spec in (
        # Section IV characterization sweeps (the dominant cost).
        ProducerSpec(
            "characterizations", prefill_latency.run_characterizations,
            smoke_params={"power_samples": 1},
        ),
        ProducerSpec(
            "quantized_characterizations",
            quantization.run_quantized_characterizations,
            smoke_params={"power_samples": 1},
        ),
        # The Section V configuration grid over MMLU-Redux.
        ProducerSpec(
            "tradeoff_grid", tradeoff_frontier.run_tradeoff_grid,
            smoke_params={"size": 300},
        ),
        # Held-out validation rows reuse the fitted characterizations.
        ProducerSpec(
            "table6_rows", latency_validation.run_table6,
            deps={"characterizations": "characterizations"},
            smoke_params={"held_out": 10},
        ),
        ProducerSpec(
            "table8_rows", power_energy.run_table8,
            deps={"characterizations": "characterizations"},
            smoke_params={"held_out": 10},
        ),
        # The planner shares the DSR1 trio's fitted models.
        ProducerSpec(
            "planner_frontier", planner_study.run_planner_frontier,
            deps={"characterizations": "characterizations"},
        ),
        # Motivation / evaluator runs.
        ProducerSpec("table2_rows", motivation.run_table2,
                     smoke_params={"questions": 50}),
        ProducerSpec("table3_rows", motivation.run_table3),
        ProducerSpec("table7_rows", pd_ratio.run_table7,
                     smoke_params={"size": 300}),
        ProducerSpec("table9_rows", frameworks.run_table9),
        ProducerSpec("table12_results", mmlu_full.run_table12,
                     smoke_params={"size": 500}),
        ProducerSpec("natural_plan_baseline", natural_plan.run_baseline),
        ProducerSpec("natural_plan_budgeted", natural_plan.run_budgeted),
        ProducerSpec("natural_plan_direct", natural_plan.run_direct),
        ProducerSpec("table16_rows", cpu_vs_gpu.run_table16),
        ProducerSpec("table17_rows", cpu_vs_gpu.run_table17),
        ProducerSpec("figure14_rows", quantization.run_figure14,
                     smoke_params={"size": 300}),
        # Parallel-scaling sweeps.
        ProducerSpec("fig9_curves", parallel_scaling.run_figure9_curves,
                     smoke_params={"size": 300}),
        ProducerSpec("fig10_curves", parallel_scaling.run_figure10_curves,
                     smoke_params={"size": 128}),
        # Serving / extension studies.
        ProducerSpec("serving_points", serving_study.run_serving_study,
                     smoke_params={"num_requests": 20,
                                   "qps_levels": (0.1, 0.4)}),
        ProducerSpec("power_mode_points", power_modes.run_power_mode_study),
        ProducerSpec("hybrid_surface", hybrid_scaling.run_hybrid_surface,
                     smoke_params={"size": 300}),
        ProducerSpec("prefix_caching_rows",
                     prefix_caching.run_prefix_caching_study),
        ProducerSpec("deadline_rows", deadline_control.run_deadline_study,
                     smoke_params={"population": 40}),
        ProducerSpec("batch_model_rows", batch_latency.run_batch_model_study),
        ProducerSpec("chaos_points", resilience.run_chaos_study,
                     smoke_params={"num_requests": 12, "qps": 3.0}),
        ProducerSpec("overload_points", resilience.run_overload_points,
                     smoke_params={"devices": 3, "storm_requests": 60,
                                   "tail_requests": 16}),
        ProducerSpec("autoscale_points", resilience.run_autoscale_points,
                     smoke_params={"devices": 4, "diurnal_requests": 120,
                                   "crowd_requests": 30, "period_s": 60.0}),
        ProducerSpec("vector_equivalence_points",
                     resilience.run_vector_equivalence_points,
                     smoke_params={"devices": 2, "requests": 40}),
        ProducerSpec("tiering_frontier_points",
                     tiering_study.run_tiering_frontier_points,
                     smoke_params={"devices": 3, "jobs": 20}),
        ProducerSpec("fleet_points", fleet_study.run_fleet_study,
                     smoke_params={"num_requests": 12, "qps": 4.0,
                                   "devices": 2}),
        ProducerSpec("fleet_plan_points", fleet_study.run_fleet_plan,
                     smoke_params={"num_requests": 8, "qps": 4.0,
                                   "device_counts": (2,),
                                   "mixes": ("maxn", "balanced"),
                                   "policies": ("round-robin",
                                                "latency-aware")}),
        ProducerSpec("fidelity_entries", fidelity.run_fidelity_audit,
                     smoke_params={"size": 300}),
        ProducerSpec("takeaway_checks", takeaways.run_takeaway_checks,
                     smoke_params={"size": 200}),
    )
}

#: Paper artifacts and extension studies, by id.
ARTIFACTS: dict[str, ArtifactSpec] = {
    spec.id: spec for spec in (
        ArtifactSpec("fig1", planner_study.figure1,
                     deps={"decisions": "planner_frontier"}),
        ArtifactSpec("table2", motivation.table2,
                     deps={"rows": "table2_rows"}),
        ArtifactSpec("table3", motivation.table3,
                     deps={"rows": "table3_rows"}),
        ArtifactSpec("fig2", prefill_latency.figure2,
                     deps={"characterizations": "characterizations"}),
        ArtifactSpec("table4", prefill_latency.table4,
                     deps={"characterizations": "characterizations"}),
        ArtifactSpec("fig3a", decode_latency.figure3a,
                     deps={"characterizations": "characterizations"}),
        ArtifactSpec("fig3b", decode_latency.figure3b,
                     deps={"characterizations": "characterizations"}),
        ArtifactSpec("table5", decode_latency.table5,
                     deps={"characterizations": "characterizations"}),
        ArtifactSpec("table6", latency_validation.table6,
                     deps={"rows": "table6_rows"}),
        ArtifactSpec("table7", pd_ratio.table7,
                     deps={"rows": "table7_rows"}),
        ArtifactSpec("fig4", power_energy.figure4,
                     deps={"characterizations": "characterizations"}),
        ArtifactSpec("fig5", power_energy.figure5,
                     deps={"characterizations": "characterizations"}),
        ArtifactSpec("table8", power_energy.table8,
                     deps={"rows": "table8_rows"}),
        ArtifactSpec("fig6", tradeoff_frontier.figure6,
                     deps={"results": "tradeoff_grid"}),
        ArtifactSpec("fig7", tradeoff_frontier.figure7,
                     deps={"results": "tradeoff_grid"}),
        ArtifactSpec("fig8", tradeoff_frontier.figure8,
                     deps={"results": "tradeoff_grid"}),
        ArtifactSpec("fig9", parallel_scaling.figure9,
                     deps={"curves_by_budget": "fig9_curves"}),
        ArtifactSpec("fig10", parallel_scaling.figure10,
                     deps={"curves": "fig10_curves"}),
        ArtifactSpec("fig11", quantization.figure11,
                     deps={"characterizations":
                           "quantized_characterizations"}),
        ArtifactSpec("fig12", quantization.figure12,
                     deps={"characterizations":
                           "quantized_characterizations"}),
        ArtifactSpec("fig13", quantization.figure13,
                     deps={"characterizations":
                           "quantized_characterizations"}),
        ArtifactSpec("fig14", quantization.figure14,
                     deps={"rows": "figure14_rows"}),
        ArtifactSpec("table9", frameworks.table9,
                     deps={"rows": "table9_rows"}),
        ArtifactSpec("table10", tradeoff_frontier.table10,
                     deps={"results": "tradeoff_grid"}),
        ArtifactSpec("table11", tradeoff_frontier.table11,
                     deps={"results": "tradeoff_grid"}),
        ArtifactSpec("table12", mmlu_full.table12,
                     deps={"results": "table12_results"}),
        ArtifactSpec("table13", natural_plan.table13,
                     deps={"results": "natural_plan_baseline"}),
        ArtifactSpec("table14", natural_plan.table14,
                     deps={"results": "natural_plan_budgeted"}),
        ArtifactSpec("table15", natural_plan.table15,
                     deps={"results": "natural_plan_direct"}),
        ArtifactSpec("table16", cpu_vs_gpu.table16,
                     deps={"rows": "table16_rows"}),
        ArtifactSpec("table17", cpu_vs_gpu.table17,
                     deps={"rows": "table17_rows"}),
        ArtifactSpec("table18_19", quantization.table18_19,
                     deps={"base": "characterizations",
                           "quant": "quantized_characterizations"}),
        ArtifactSpec("table20", power_energy.table20,
                     deps={"characterizations": "characterizations"}),
        ArtifactSpec("table21", power_energy.table21,
                     deps={"characterizations": "characterizations"}),
        ArtifactSpec("table22_23", quantization.table22_23,
                     deps={"characterizations":
                           "quantized_characterizations"}),
        # Extension / ablation studies beyond the paper's artifact list.
        ArtifactSpec("serving", serving_study.serving_table,
                     deps={"points": "serving_points"}),
        ArtifactSpec("optimizations", optimizations.optimizations_report),
        ArtifactSpec("power-modes", power_modes.power_mode_table,
                     deps={"points": "power_mode_points"}),
        ArtifactSpec("hybrid-scaling", hybrid_scaling.hybrid_table,
                     deps={"surface": "hybrid_surface"}),
        ArtifactSpec("prefix-caching", prefix_caching.prefix_caching_table,
                     deps={"rows": "prefix_caching_rows"}),
        ArtifactSpec("fidelity", fidelity.fidelity_table,
                     deps={"entries": "fidelity_entries"}),
        ArtifactSpec("deadline-control", deadline_control.deadline_table,
                     deps={"rows": "deadline_rows"}),
        ArtifactSpec("takeaways", takeaways.takeaways_table,
                     deps={"checks": "takeaway_checks"}),
        ArtifactSpec("batch-latency-model", batch_latency.batch_model_table,
                     deps={"rows": "batch_model_rows"}),
        ArtifactSpec("resilience", resilience.resilience_table,
                     deps={"points": "chaos_points"}),
        ArtifactSpec("fleet", fleet_study.fleet_table,
                     deps={"points": "fleet_points"}),
        ArtifactSpec("fleet-overload", resilience.fleet_overload_table,
                     deps={"points": "overload_points"}),
        ArtifactSpec("fleet-autoscale", resilience.fleet_autoscale_table,
                     deps={"points": "autoscale_points"}),
        ArtifactSpec("vector-equivalence",
                     resilience.vector_equivalence_table,
                     deps={"points": "vector_equivalence_points"}),
        ArtifactSpec("tiering-frontier",
                     tiering_study.tiering_frontier_table,
                     deps={"points": "tiering_frontier_points"}),
        ArtifactSpec("fleet-pareto", fleet_study.fleet_pareto_table,
                     deps={"points": "fleet_plan_points"}),
    )
}


def default_graph() -> DependencyGraph:
    """The validated DAG over the full registry."""
    return DependencyGraph(PRODUCERS, ARTIFACTS)
