"""Supervised producer execution: retries, watchdog, and quarantine.

Long artifact sweeps die for boring reasons — a flaky producer raises
once, a hung dependency never returns, a corrupted cache entry poisons
a rebuild.  The :class:`Supervisor` wraps every producer computation
with the containment policy the pipeline runner configures:

* **retry with seeded exponential backoff + jitter** — transient
  producer exceptions are retried up to ``policy.retries`` extra
  attempts; the backoff sequence is derived from ``(seed, producer,
  attempt)`` so chaos runs replay bit-for-bit;
* **wall-clock watchdog** — each attempt runs under
  ``policy.timeout_s``; a hung producer is abandoned (daemon thread)
  and the attempt recorded as a timeout instead of wedging the sweep;
* **failure quarantine** — a producer that exhausts its attempts is
  marked failed once; every later artifact that (transitively) needs
  it fails *immediately* with the original
  :class:`ProducerFailure` instead of burning the retry budget again.

Every attempt is recorded as an :class:`AttemptRecord` (outcome plus a
stable exception digest) and failed artifacts surface as structured
:class:`FailedArtifact` records in the
:class:`~repro.pipeline.runner.PipelineReport`.

The supervisor is also the chaos seam: when constructed with a
:class:`~repro.faults.FaultInjector` carrying a
:class:`~repro.faults.PipelineFaultConfig`, it injects deterministic
transient exceptions and hangs *inside* the supervised attempt, so the
retry/watchdog machinery is exercised exactly as a real fault would.
"""

from __future__ import annotations

import hashlib
import random
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable

#: Cap on the recorded exception message, so reports stay bounded.
_MAX_ERROR_CHARS = 200


def exception_digest(exc: BaseException) -> str:
    """Stable 12-hex digest of an exception's type and message."""
    token = f"{type(exc).__name__}:{exc}".encode(errors="replace")
    return hashlib.sha256(token).hexdigest()[:12]


class InjectedProducerFault(RuntimeError):
    """A chaos-mode transient exception raised inside a producer."""


class WatchdogTimeout(RuntimeError):
    """An attempt exceeded the supervisor's wall-clock budget."""


@dataclass(frozen=True)
class AttemptRecord:
    """One supervised attempt at computing a producer."""

    producer: str
    attempt: int
    seconds: float
    outcome: str  # "ok" | "error" | "timeout"
    error_type: str | None = None
    error_digest: str | None = None

    def to_record(self) -> dict[str, Any]:
        """Flat dict for JSON export."""
        return {
            "producer": self.producer,
            "attempt": self.attempt,
            "seconds": self.seconds,
            "outcome": self.outcome,
            "error_type": self.error_type,
            "error_digest": self.error_digest,
        }


class ProducerFailure(RuntimeError):
    """A producer exhausted its retry budget (or was quarantined)."""

    def __init__(self, producer_id: str, attempts: tuple[AttemptRecord, ...],
                 error_type: str, error: str):
        attempt_count = len(attempts)
        super().__init__(
            f"producer {producer_id!r} failed after {attempt_count} "
            f"attempt{'s' if attempt_count != 1 else ''}: "
            f"{error_type}: {error}")
        self.producer_id = producer_id
        self.attempts = attempts
        self.error_type = error_type
        self.error = error


@dataclass(frozen=True)
class FailedArtifact:
    """One quarantined artifact in a ``keep_going`` run.

    ``producer`` names the failed producer when the root cause was an
    upstream computation (the artifact was isolated together with
    everything downstream of that producer); ``None`` means the
    artifact's own formatting function raised.
    """

    artifact: str
    producer: str | None
    error_type: str
    error: str
    error_digest: str
    attempts: tuple[AttemptRecord, ...] = ()

    def to_record(self) -> dict[str, Any]:
        """Flat dict for JSON export."""
        return {
            "kind": "failure",
            "artifact": self.artifact,
            "producer": self.producer,
            "error_type": self.error_type,
            "error": self.error,
            "error_digest": self.error_digest,
            "attempts": [a.to_record() for a in self.attempts],
        }


@dataclass(frozen=True)
class SupervisorPolicy:
    """Retry/backoff/watchdog knobs for supervised producers.

    ``retries`` is the number of *extra* attempts after the first;
    backoff before attempt ``n+1`` is ``backoff_base_s *
    backoff_factor**(n-1)`` scaled by a seeded jitter in
    ``[1 - jitter_frac, 1 + jitter_frac]``.  ``timeout_s=None``
    disables the watchdog.
    """

    retries: int = 0
    backoff_base_s: float = 0.05
    backoff_factor: float = 2.0
    jitter_frac: float = 0.1
    timeout_s: float | None = None

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise ValueError("retries must be non-negative")
        if self.backoff_base_s < 0:
            raise ValueError("backoff_base_s must be non-negative")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if not 0.0 <= self.jitter_frac < 1.0:
            raise ValueError("jitter_frac must be in [0, 1)")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ValueError("timeout_s must be positive when set")


@dataclass
class SupervisorStats:
    """Aggregate containment accounting for one run."""

    attempts: int = 0
    retries: int = 0
    recovered: int = 0  # producers that failed at least once, then succeeded
    timeouts: int = 0
    injected_faults: int = 0
    #: Seconds spent in attempts that did not produce a value.
    wasted_seconds: float = 0.0
    failed_producers: tuple[str, ...] = ()
    attempt_log: list[AttemptRecord] = field(default_factory=list)

    def merge(self, other: "SupervisorStats") -> None:
        """Fold another supervisor's counters in (e.g. a worker
        process's); attempt logs concatenate in merge order."""
        self.attempts += other.attempts
        self.retries += other.retries
        self.recovered += other.recovered
        self.timeouts += other.timeouts
        self.injected_faults += other.injected_faults
        self.wasted_seconds += other.wasted_seconds
        self.failed_producers = tuple(dict.fromkeys(
            self.failed_producers + other.failed_producers))
        self.attempt_log.extend(other.attempt_log)


class Supervisor:
    """Retry/watchdog/quarantine wrapper around producer computations.

    Thread-safe: parallel pipeline jobs share one supervisor.  The
    store's single-flight locking already serializes attempts for one
    key, so the supervisor only synchronizes its counters and the
    quarantine map.
    """

    def __init__(self, policy: SupervisorPolicy | None = None,
                 seed: int = 0, faults: Any = None,
                 sleep: Callable[[float], None] = time.sleep):
        self.policy = policy or SupervisorPolicy()
        self.seed = seed
        self.faults = faults
        self._sleep = sleep
        self._lock = threading.Lock()
        self._failed: dict[str, ProducerFailure] = {}
        self._stats = SupervisorStats()

    # ------------------------------------------------------------------
    def backoff_seconds(self, producer_id: str, attempt: int) -> float:
        """Seeded backoff before retrying ``attempt + 1``."""
        policy = self.policy
        base = policy.backoff_base_s * policy.backoff_factor ** (attempt - 1)
        if policy.jitter_frac <= 0:
            return base
        rng = random.Random(f"{self.seed}:{producer_id}:{attempt}")
        jitter = rng.uniform(-policy.jitter_frac, policy.jitter_frac)
        return base * (1.0 + jitter)

    # ------------------------------------------------------------------
    def run_producer(self, producer_id: str,
                     compute: Callable[[], Any]) -> Any:
        """Compute one producer under the containment policy.

        Raises :class:`ProducerFailure` when the budget is exhausted;
        the same failure is re-raised instantly for any later request
        (quarantine).  A :class:`ProducerFailure` raised *inside*
        ``compute`` (a quarantined dependency) propagates untouched —
        retrying this producer cannot fix its dependency.
        """
        with self._lock:
            quarantined = self._failed.get(producer_id)
        if quarantined is not None:
            raise quarantined

        max_attempts = self.policy.retries + 1
        last_exc: BaseException | None = None
        for attempt in range(1, max_attempts + 1):
            start = time.perf_counter()
            try:
                value = self._attempt(producer_id, attempt, compute)
            except ProducerFailure:
                raise  # a dependency's quarantine: not this producer's fault
            except BaseException as exc:
                elapsed = time.perf_counter() - start
                timed_out = isinstance(exc, WatchdogTimeout)
                record = AttemptRecord(
                    producer=producer_id, attempt=attempt, seconds=elapsed,
                    outcome="timeout" if timed_out else "error",
                    error_type=type(exc).__name__,
                    error_digest=exception_digest(exc),
                )
                with self._lock:
                    stats = self._stats
                    stats.attempts += 1
                    stats.wasted_seconds += elapsed
                    stats.timeouts += timed_out
                    stats.injected_faults += isinstance(
                        exc, InjectedProducerFault)
                    stats.attempt_log.append(record)
                last_exc = exc
                if attempt < max_attempts:
                    with self._lock:
                        self._stats.retries += 1
                    self._sleep(self.backoff_seconds(producer_id, attempt))
                    continue
                with self._lock:
                    attempts = tuple(r for r in self._stats.attempt_log
                                     if r.producer == producer_id)
                failure = ProducerFailure(
                    producer_id, attempts,
                    type(exc).__name__,
                    str(exc)[:_MAX_ERROR_CHARS],
                )
                failure.__cause__ = exc
                with self._lock:
                    self._failed[producer_id] = failure
                    self._stats.failed_producers = tuple(
                        sorted(self._failed))
                raise failure
            elapsed = time.perf_counter() - start
            with self._lock:
                stats = self._stats
                stats.attempts += 1
                stats.recovered += attempt > 1
                stats.attempt_log.append(AttemptRecord(
                    producer=producer_id, attempt=attempt,
                    seconds=elapsed, outcome="ok"))
            return value
        raise AssertionError(f"unreachable: {last_exc!r}")  # pragma: no cover

    # ------------------------------------------------------------------
    def _attempt(self, producer_id: str, attempt: int,
                 compute: Callable[[], Any]) -> Any:
        """One attempt: chaos injection, then the watchdog-guarded call."""
        fn = compute
        faults = self.faults
        if faults is not None:
            if getattr(faults, "should_fail_producer", None) and \
                    faults.should_fail_producer(producer_id, attempt):
                raise InjectedProducerFault(
                    f"injected transient fault in {producer_id!r} "
                    f"(attempt {attempt})")
            if getattr(faults, "should_hang_producer", None) and \
                    faults.should_hang_producer(producer_id, attempt):
                hang_s = faults.pipeline.hang_seconds

                def fn() -> Any:
                    time.sleep(hang_s)
                    return compute()

        return self._call_with_watchdog(producer_id, fn)

    def _call_with_watchdog(self, producer_id: str,
                            fn: Callable[[], Any]) -> Any:
        timeout_s = self.policy.timeout_s
        if timeout_s is None:
            return fn()
        box: dict[str, Any] = {}
        done = threading.Event()

        def target() -> None:
            try:
                box["value"] = fn()
            except BaseException as exc:  # re-raised on the caller thread
                box["error"] = exc
            finally:
                done.set()

        worker = threading.Thread(
            target=target, daemon=True,
            name=f"supervised-{producer_id}")
        worker.start()
        if not done.wait(timeout_s):
            # The worker is abandoned (daemon): a truly hung producer
            # cannot be interrupted from Python, only contained.
            raise WatchdogTimeout(
                f"producer {producer_id!r} exceeded {timeout_s:.3g} s")
        if "error" in box:
            raise box["error"]
        return box["value"]

    # ------------------------------------------------------------------
    @property
    def stats(self) -> SupervisorStats:
        """A snapshot of the containment counters."""
        with self._lock:
            stats = self._stats
            return SupervisorStats(
                attempts=stats.attempts,
                retries=stats.retries,
                recovered=stats.recovered,
                timeouts=stats.timeouts,
                injected_faults=stats.injected_faults,
                wasted_seconds=stats.wasted_seconds,
                failed_producers=stats.failed_producers,
                attempt_log=list(stats.attempt_log),
            )

    def merge_stats(self, other: SupervisorStats) -> None:
        """Fold a worker process's counters into this supervisor."""
        with self._lock:
            self._stats.merge(other)

    def failure_for(self, producer_id: str) -> ProducerFailure | None:
        """The quarantined failure for a producer, if any."""
        with self._lock:
            return self._failed.get(producer_id)

    def attempts_for(self, producer_id: str) -> tuple[AttemptRecord, ...]:
        """Every recorded attempt for one producer, in order."""
        with self._lock:
            return tuple(r for r in self._stats.attempt_log
                         if r.producer == producer_id)


def failed_artifact_from(artifact_id: str,
                         exc: BaseException) -> FailedArtifact:
    """Build the quarantine record for one failed artifact build."""
    if isinstance(exc, ProducerFailure):
        return FailedArtifact(
            artifact=artifact_id,
            producer=exc.producer_id,
            error_type=exc.error_type,
            error=exc.error,
            error_digest=exception_digest(exc),
            attempts=exc.attempts,
        )
    return FailedArtifact(
        artifact=artifact_id,
        producer=None,
        error_type=type(exc).__name__,
        error=str(exc)[:_MAX_ERROR_CHARS],
        error_digest=exception_digest(exc),
    )
