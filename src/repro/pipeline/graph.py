"""Declarative producer/artifact specs and dependency-DAG resolution.

A *producer* is a shared, expensive intermediate (a characterization
sweep, the Section V tradeoff grid, a serving sweep) memoized in an
:class:`~repro.pipeline.store.ArtifactStore`.  An *artifact* is a paper
table/figure built from producer outputs.  Both declare dependencies as
``{kwarg_name: producer_id}`` so the runner injects resolved values
instead of each module privately recomputing them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from repro.pipeline.store import ArtifactStore


@dataclass(frozen=True)
class ProducerSpec:
    """One memoized intermediate.

    ``fn`` is called as ``fn(seed=seed, **deps, **params)`` where
    ``deps`` maps each kwarg name to the resolved value of the producer
    it names.  ``params`` are the full-scale defaults; ``smoke_params``
    override them under the smoke profile (small sizes, fast CI).  Both
    are part of the memoization key, so full and smoke results never
    collide in the store.
    """

    id: str
    fn: Callable[..., Any]
    deps: Mapping[str, str] = field(default_factory=dict)
    params: Mapping[str, Any] = field(default_factory=dict)
    smoke_params: Mapping[str, Any] = field(default_factory=dict)

    def effective_params(self, smoke: bool) -> dict[str, Any]:
        """The params used at one scale (smoke overrides full)."""
        merged = dict(self.params)
        if smoke:
            merged.update(self.smoke_params)
        return merged


@dataclass(frozen=True)
class ArtifactSpec:
    """One paper artifact: a formatting function plus its producer deps."""

    id: str
    fn: Callable[..., Any]
    deps: Mapping[str, str] = field(default_factory=dict)


class DependencyGraph:
    """Validated producer/artifact DAG with store-backed resolution."""

    def __init__(self, producers: Mapping[str, ProducerSpec],
                 artifacts: Mapping[str, ArtifactSpec]):
        self.producers = dict(producers)
        self.artifacts = dict(artifacts)
        self._validate()

    # ------------------------------------------------------------------
    def _validate(self) -> None:
        for producer in self.producers.values():
            for dep in producer.deps.values():
                if dep not in self.producers:
                    raise ValueError(
                        f"producer {producer.id!r} depends on unknown "
                        f"producer {dep!r}")
        for artifact in self.artifacts.values():
            for dep in artifact.deps.values():
                if dep not in self.producers:
                    raise ValueError(
                        f"artifact {artifact.id!r} depends on unknown "
                        f"producer {dep!r}")
        self._check_acyclic()

    def _check_acyclic(self) -> None:
        state: dict[str, int] = {}  # 0 = visiting, 1 = done

        def visit(pid: str, chain: tuple[str, ...]) -> None:
            mark = state.get(pid)
            if mark == 1:
                return
            if mark == 0:
                cycle = " -> ".join(chain + (pid,))
                raise ValueError(f"producer dependency cycle: {cycle}")
            state[pid] = 0
            for dep in self.producers[pid].deps.values():
                visit(dep, chain + (pid,))
            state[pid] = 1

        for pid in self.producers:
            visit(pid, ())

    # ------------------------------------------------------------------
    def producer_closure(self, artifact_id: str) -> tuple[str, ...]:
        """Every producer (transitively) needed by one artifact, topo order."""
        order: list[str] = []
        seen: set[str] = set()

        def visit(pid: str) -> None:
            if pid in seen:
                return
            seen.add(pid)
            for dep in self.producers[pid].deps.values():
                visit(dep)
            order.append(pid)

        for dep in self.artifacts[artifact_id].deps.values():
            visit(dep)
        return tuple(order)

    # ------------------------------------------------------------------
    def resolve_producer(self, producer_id: str, store: ArtifactStore,
                         seed: int, smoke: bool = False,
                         supervisor: Any = None) -> Any:
        """Resolve one producer through the store (recursing into deps).

        The store's single-flight locking guarantees each producer is
        computed exactly once per ``(seed, params)`` even when parallel
        artifact jobs request it concurrently.  When a
        :class:`~repro.pipeline.supervisor.Supervisor` is passed, the
        computation runs under its retry/watchdog/quarantine policy
        (and its chaos injection, when configured).
        """
        spec = self.producers[producer_id]
        params = spec.effective_params(smoke)

        def compute() -> Any:
            kwargs = {
                kwarg: self.resolve_producer(dep, store, seed, smoke,
                                             supervisor)
                for kwarg, dep in spec.deps.items()
            }
            return spec.fn(seed=seed, **kwargs, **params)

        if supervisor is None:
            return store.get_or_compute(producer_id, seed, params, compute)
        return store.get_or_compute(
            producer_id, seed, params,
            lambda: supervisor.run_producer(producer_id, compute))

    def build_artifact(self, artifact_id: str, store: ArtifactStore,
                       seed: int, smoke: bool = False,
                       extra_kwargs: Mapping[str, Any] | None = None,
                       supervisor: Any = None) -> Any:
        """Resolve an artifact's deps and invoke its formatting function."""
        spec = self.artifacts[artifact_id]
        kwargs: dict[str, Any] = {
            kwarg: self.resolve_producer(dep, store, seed, smoke, supervisor)
            for kwarg, dep in spec.deps.items()
        }
        kwargs.update(extra_kwargs or {})
        return spec.fn(seed=seed, **kwargs)
