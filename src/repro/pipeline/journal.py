"""Durable run journal: an append-only JSONL WAL with ``--resume``.

A full artifact sweep takes minutes; a crash at artifact 41 of 45 used
to throw all of it away.  The :class:`RunJournal` makes runs
resumable: every pipeline run with a disk cache appends
``run_start`` / ``artifact_start`` / ``artifact_commit`` /
``artifact_fail`` / ``run_end`` events to
``<cache_dir>/journal/<run_id>.jsonl`` (atomic, fsynced appends via
:func:`repro.core.persistence.append_jsonl_line`), and each commit
persists the artifact's output as a checksummed pickle next to it.

``repro run --resume RUN_ID`` replays the journal, loads the committed
outputs (verifying checksums — a corrupt payload is recomputed, never
trusted), and rebuilds only in-flight or failed artifacts.  Because
producers are memoized on the same disk cache, the recomputation is
incremental too, and the final outputs are byte-identical to an
uninterrupted run.

Torn tails are expected, not fatal: a crash mid-append leaves at most
one truncated final line, which replay detects and drops
(``torn_tail=True``), trusting everything before it.
"""

from __future__ import annotations

import threading
import time
import uuid
from pathlib import Path
from typing import Any, Callable

from repro.core.persistence import (
    CacheCorruptionError,
    append_jsonl_line,
    load_payload,
    read_jsonl,
    save_payload,
)

#: Journal event kinds, in lifecycle order.
EVENT_KINDS = ("run_start", "artifact_start", "artifact_commit",
               "artifact_fail", "run_end")


def new_run_id() -> str:
    """A fresh, filesystem-safe run id (sortable by start time)."""
    stamp = time.strftime("%Y%m%d-%H%M%S")
    return f"{stamp}-{uuid.uuid4().hex[:8]}"


class RunJournal:
    """Append-only WAL of one (possibly multi-invocation) pipeline run.

    Create with :meth:`create` for a fresh run or :meth:`open` to
    resume; both are cheap.  All ``record_*`` methods append durably
    and update the in-memory replay state, so one instance can be
    interrogated (``committed_artifacts``) while the run progresses.

    ``on_commit`` (a callable taking the artifact id) fires after each
    commit event reaches disk; chaos tests use it to simulate a crash
    at a precise point in the sweep.
    """

    def __init__(self, cache_dir: str | Path, run_id: str):
        self.cache_dir = Path(cache_dir)
        self.run_id = run_id
        self.path = self.cache_dir / "journal" / f"{run_id}.jsonl"
        self.payload_dir = self.cache_dir / "journal" / run_id
        self.torn_tail = False
        self.corrupt_payloads: list[str] = []
        self.on_commit: Callable[[str], None] | None = None
        self._lock = threading.Lock()
        self._committed: dict[str, str] = {}  # artifact -> payload filename
        self._failed: set[str] = set()
        self._started: set[str] = set()
        self._meta: dict[str, Any] = {}

    # ------------------------------------------------------------------
    @classmethod
    def create(cls, cache_dir: str | Path, run_id: str | None = None,
               seed: int = 0, smoke: bool = False,
               artifact_ids: tuple[str, ...] = ()) -> "RunJournal":
        """Start a fresh journal and write its ``run_start`` event."""
        journal = cls(cache_dir, run_id or new_run_id())
        if journal.path.exists():
            raise ValueError(
                f"journal for run {journal.run_id!r} already exists; "
                f"use RunJournal.open to resume it")
        journal._meta = {"seed": seed, "smoke": smoke,
                         "artifacts": list(artifact_ids)}
        journal._append({"event": "run_start", **journal._meta})
        return journal

    @classmethod
    def open(cls, cache_dir: str | Path, run_id: str) -> "RunJournal":
        """Replay an existing journal (recovering a torn tail)."""
        journal = cls(cache_dir, run_id)
        if not journal.path.is_file():
            raise FileNotFoundError(
                f"no journal for run {run_id!r} under {journal.path.parent}")
        events, torn = read_jsonl(journal.path)
        journal.torn_tail = torn
        for event in events:
            kind = event.get("event")
            artifact = event.get("artifact", "")
            if kind == "run_start":
                journal._meta = {k: event.get(k)
                                 for k in ("seed", "smoke", "artifacts")}
            elif kind == "artifact_start":
                journal._started.add(artifact)
            elif kind == "artifact_commit":
                journal._committed[artifact] = event.get("payload", "")
                journal._failed.discard(artifact)
            elif kind == "artifact_fail":
                journal._failed.add(artifact)
        return journal

    # ------------------------------------------------------------------
    @staticmethod
    def list_runs(cache_dir: str | Path) -> tuple[str, ...]:
        """Run ids with a journal under ``cache_dir``, oldest first."""
        journal_dir = Path(cache_dir) / "journal"
        if not journal_dir.is_dir():
            return ()
        return tuple(sorted(p.stem for p in journal_dir.glob("*.jsonl")))

    # ------------------------------------------------------------------
    @property
    def meta(self) -> dict[str, Any]:
        """The ``run_start`` metadata (seed, smoke, artifact ids)."""
        return dict(self._meta)

    @property
    def committed_artifacts(self) -> tuple[str, ...]:
        """Artifacts with a durable commit, in commit order."""
        with self._lock:
            return tuple(self._committed)

    @property
    def failed_artifacts(self) -> tuple[str, ...]:
        """Artifacts whose latest outcome was a failure."""
        with self._lock:
            return tuple(sorted(self._failed))

    @property
    def in_flight_artifacts(self) -> tuple[str, ...]:
        """Artifacts started but neither committed nor failed.

        After a crash these are the torn builds ``--resume`` recomputes.
        """
        with self._lock:
            return tuple(sorted(self._started - set(self._committed)
                                - self._failed))

    # ------------------------------------------------------------------
    def record_start(self, artifact_id: str) -> None:
        """Journal the start of one artifact build."""
        with self._lock:
            self._started.add(artifact_id)
        self._append({"event": "artifact_start", "artifact": artifact_id})

    def record_commit(self, artifact_id: str, output: Any) -> None:
        """Persist the output payload, then journal the commit.

        Payload-before-event ordering makes the commit atomic: a crash
        between the two leaves an orphan payload file (harmless) and an
        uncommitted artifact the resume path recomputes.
        """
        filename = f"{_safe_name(artifact_id)}.pkl"
        save_payload(self.payload_dir / filename, output,
                     meta={"artifact": artifact_id, "run": self.run_id})
        with self._lock:
            self._committed[artifact_id] = filename
            self._failed.discard(artifact_id)
        self._append({"event": "artifact_commit", "artifact": artifact_id,
                      "payload": filename})
        if self.on_commit is not None:
            self.on_commit(artifact_id)

    def record_fail(self, artifact_id: str, error_type: str,
                    error_digest: str) -> None:
        """Journal a quarantined artifact (recomputed on resume)."""
        with self._lock:
            self._failed.add(artifact_id)
        self._append({"event": "artifact_fail", "artifact": artifact_id,
                      "error_type": error_type,
                      "error_digest": error_digest})

    def record_run_end(self, status: str) -> None:
        """Journal the end of one invocation (``ok`` / ``failed``)."""
        self._append({"event": "run_end", "status": status})

    # ------------------------------------------------------------------
    def load_committed_output(self, artifact_id: str) -> Any:
        """Load one committed artifact's persisted output.

        Raises :class:`KeyError` when the artifact was never committed
        and :class:`CacheCorruptionError` when the payload fails its
        checksum — the caller must then recompute, never trust it.
        """
        with self._lock:
            filename = self._committed.get(artifact_id)
        if filename is None:
            raise KeyError(artifact_id)
        payload = load_payload(
            self.payload_dir / filename,
            expect_meta={"artifact": artifact_id, "run": self.run_id})
        if payload is None:
            raise CacheCorruptionError(
                self.payload_dir / filename, "committed payload missing")
        return payload

    def verified_committed(self) -> tuple[str, ...]:
        """Committed artifacts whose payloads pass their checksums.

        Artifacts with a missing or corrupt payload are dropped from
        the committed set (and listed in ``corrupt_payloads``) so the
        resume path recomputes them.
        """
        verified: list[str] = []
        for artifact_id in self.committed_artifacts:
            try:
                self.load_committed_output(artifact_id)
            except CacheCorruptionError:
                with self._lock:
                    self._committed.pop(artifact_id, None)
                self.corrupt_payloads.append(artifact_id)
            else:
                verified.append(artifact_id)
        return tuple(verified)

    # ------------------------------------------------------------------
    def _append(self, record: dict[str, Any]) -> None:
        append_jsonl_line(self.path, {"run": self.run_id,
                                      "t": time.time(), **record})


def _safe_name(artifact_id: str) -> str:
    return "".join(c if c.isalnum() or c in "._-" else "_"
                   for c in artifact_id)
