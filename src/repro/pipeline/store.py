"""Memoization store for expensive experiment intermediates.

``ArtifactStore`` caches producer results keyed by
``(producer_id, seed, params-hash)``.  Two tiers:

* an in-memory dict, shared by every artifact of one ``run_all`` — this
  is what makes the pipeline compute ``run_characterizations`` once
  instead of four times;
* an optional on-disk tier (``cache_dir``) built on
  :mod:`repro.core.persistence`, which survives across processes and
  makes warm ``repro run --all`` invocations fast.

Lookups are single-flight: when parallel pipeline jobs request the same
key, exactly one thread computes while the others block on the per-key
lock and then read the memoized value.  Hit/miss/compute-time counters
feed the ``--timing`` instrumentation.
"""

from __future__ import annotations

import hashlib
import json
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Mapping

from repro.core.persistence import load_cached_artifact, save_cached_artifact


def params_hash(params: Mapping[str, Any] | None) -> str:
    """Stable hash of a producer's keyword parameters.

    Parameters must be JSON-representable (the registry only uses ints,
    floats, strings, bools, and tuples/lists of them); tuples and lists
    hash identically so specs may use either.
    """
    canonical = json.dumps(_jsonable(dict(params or {})), sort_keys=True,
                           separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


def _jsonable(value: Any) -> Any:
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    raise TypeError(
        f"producer params must be JSON-representable, got {type(value).__name__}"
    )


@dataclass(frozen=True)
class CacheKey:
    """Identity of one memoized producer result."""

    producer_id: str
    seed: int
    params_hash: str


@dataclass
class StoreStats:
    """Aggregate and per-producer cache accounting."""

    hits: int = 0
    misses: int = 0
    disk_hits: int = 0
    #: producer_id -> number of actual computations.
    misses_by_producer: dict[str, int] = field(default_factory=dict)
    #: producer_id -> number of memory/disk hits.
    hits_by_producer: dict[str, int] = field(default_factory=dict)
    #: producer_id -> total compute seconds (only for misses).
    compute_seconds: dict[str, float] = field(default_factory=dict)


class _Entry:
    """Per-key slot with its single-flight lock."""

    __slots__ = ("lock", "computed", "value")

    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.computed = False
        self.value: Any = None


class ArtifactStore:
    """Two-tier, thread-safe memoization of producer results."""

    def __init__(self, cache_dir: str | Path | None = None):
        self.cache_dir = Path(cache_dir) if cache_dir else None
        self._entries: dict[CacheKey, _Entry] = {}
        self._master = threading.Lock()
        self._stats = StoreStats()

    # ------------------------------------------------------------------
    def get_or_compute(self, producer_id: str, seed: int,
                       params: Mapping[str, Any] | None,
                       compute: Callable[[], Any]) -> Any:
        """Return the memoized value for the key, computing it at most once.

        Repeated calls with the same ``(producer_id, seed, params)``
        return the *identical* object from the in-memory tier.
        """
        key = CacheKey(producer_id, seed, params_hash(params))
        with self._master:
            entry = self._entries.get(key)
            if entry is None:
                entry = self._entries[key] = _Entry()
        with entry.lock:
            if entry.computed:
                self._count_hit(producer_id)
                return entry.value
            if self.cache_dir is not None:
                cached = load_cached_artifact(
                    self.cache_dir, producer_id, seed, key.params_hash)
                if cached is not None:
                    entry.value = cached
                    entry.computed = True
                    self._count_hit(producer_id, disk=True)
                    return cached
            start = time.perf_counter()
            value = compute()
            elapsed = time.perf_counter() - start
            entry.value = value
            entry.computed = True
            self._count_miss(producer_id, elapsed)
            if self.cache_dir is not None:
                save_cached_artifact(self.cache_dir, producer_id, seed,
                                     key.params_hash, value)
            return value

    # ------------------------------------------------------------------
    def _count_hit(self, producer_id: str, disk: bool = False) -> None:
        with self._master:
            self._stats.hits += 1
            if disk:
                self._stats.disk_hits += 1
            by = self._stats.hits_by_producer
            by[producer_id] = by.get(producer_id, 0) + 1

    def _count_miss(self, producer_id: str, seconds: float) -> None:
        with self._master:
            self._stats.misses += 1
            by = self._stats.misses_by_producer
            by[producer_id] = by.get(producer_id, 0) + 1
            times = self._stats.compute_seconds
            times[producer_id] = times.get(producer_id, 0.0) + seconds

    # ------------------------------------------------------------------
    @property
    def stats(self) -> StoreStats:
        """A snapshot of the counters (safe to read while running)."""
        with self._master:
            return StoreStats(
                hits=self._stats.hits,
                misses=self._stats.misses,
                disk_hits=self._stats.disk_hits,
                misses_by_producer=dict(self._stats.misses_by_producer),
                hits_by_producer=dict(self._stats.hits_by_producer),
                compute_seconds=dict(self._stats.compute_seconds),
            )

    def clear_memory(self) -> None:
        """Drop the in-memory tier (disk survives); counters keep counting."""
        with self._master:
            self._entries.clear()
