"""Memoization store for expensive experiment intermediates.

``ArtifactStore`` caches producer results keyed by
``(producer_id, seed, params-hash)``.  Two tiers:

* an in-memory dict, shared by every artifact of one ``run_all`` — this
  is what makes the pipeline compute ``run_characterizations`` once
  instead of four times;
* an optional on-disk tier (``cache_dir``) built on
  :mod:`repro.core.persistence`, which survives across processes and
  makes warm ``repro run --all`` invocations fast.

Lookups are single-flight: when parallel pipeline jobs request the same
key, exactly one thread computes while the others block on the per-key
lock and then read the memoized value.  Hit/miss/compute-time counters
feed the ``--timing`` instrumentation.

Disk entries are checksummed envelopes
(:func:`repro.core.persistence.save_cached_artifact`): a corrupt
pickle, checksum mismatch, or stale schema version is *counted*
(``StoreStats.disk_corruptions``, per-producer breakdown) and logged
once per key before recomputing, instead of silently degrading to a
miss.  Chaos mode wires a
:class:`~repro.faults.FaultInjector` into the ``faults`` seam to
deliberately corrupt freshly written entries and prove that detection
path works.
"""

from __future__ import annotations

import hashlib
import json
import logging
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Mapping

from repro.core.persistence import (
    CacheCorruptionError,
    artifact_cache_path,
    load_cached_artifact_checked,
    save_cached_artifact,
)

logger = logging.getLogger(__name__)


def params_hash(params: Mapping[str, Any] | None) -> str:
    """Stable hash of a producer's keyword parameters.

    Parameters must be JSON-representable (the registry only uses ints,
    floats, strings, bools, and tuples/lists of them); tuples and lists
    hash identically so specs may use either.
    """
    canonical = json.dumps(_jsonable(dict(params or {})), sort_keys=True,
                           separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


def _jsonable(value: Any) -> Any:
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    raise TypeError(
        f"producer params must be JSON-representable, got {type(value).__name__}"
    )


@dataclass(frozen=True)
class CacheKey:
    """Identity of one memoized producer result."""

    producer_id: str
    seed: int
    params_hash: str


@dataclass
class StoreStats:
    """Aggregate and per-producer cache accounting."""

    hits: int = 0
    misses: int = 0
    disk_hits: int = 0
    #: disk-tier entries that failed integrity checks (recomputed).
    disk_corruptions: int = 0
    #: producer_id -> number of actual computations.
    misses_by_producer: dict[str, int] = field(default_factory=dict)
    #: producer_id -> number of memory/disk hits.
    hits_by_producer: dict[str, int] = field(default_factory=dict)
    #: producer_id -> total compute seconds (only for misses).
    compute_seconds: dict[str, float] = field(default_factory=dict)
    #: producer_id -> number of corrupt disk entries detected.
    corruptions_by_producer: dict[str, int] = field(default_factory=dict)

    def merge(self, other: "StoreStats") -> None:
        """Fold another run's counters in (e.g. a worker process's)."""
        self.hits += other.hits
        self.misses += other.misses
        self.disk_hits += other.disk_hits
        self.disk_corruptions += other.disk_corruptions
        for target, source in (
                (self.misses_by_producer, other.misses_by_producer),
                (self.hits_by_producer, other.hits_by_producer),
                (self.corruptions_by_producer, other.corruptions_by_producer)):
            for producer, count in source.items():
                target[producer] = target.get(producer, 0) + count
        for producer, seconds in other.compute_seconds.items():
            self.compute_seconds[producer] = (
                self.compute_seconds.get(producer, 0.0) + seconds)


class _Entry:
    """Per-key slot with its single-flight lock."""

    __slots__ = ("lock", "computed", "value")

    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.computed = False
        self.value: Any = None


class ArtifactStore:
    """Two-tier, thread-safe memoization of producer results.

    ``faults`` is the chaos seam: a
    :class:`~repro.faults.FaultInjector` whose pipeline config enables
    ``corrupt-cache-entry`` faults garbles freshly written disk
    entries, exercising the integrity detection/recompute path.
    """

    def __init__(self, cache_dir: str | Path | None = None,
                 faults: Any = None):
        self.cache_dir = Path(cache_dir) if cache_dir else None
        self.faults = faults
        self._entries: dict[CacheKey, _Entry] = {}
        self._master = threading.Lock()
        self._stats = StoreStats()
        self._warned_corrupt: set[CacheKey] = set()

    # ------------------------------------------------------------------
    def get_or_compute(self, producer_id: str, seed: int,
                       params: Mapping[str, Any] | None,
                       compute: Callable[[], Any]) -> Any:
        """Return the memoized value for the key, computing it at most once.

        Repeated calls with the same ``(producer_id, seed, params)``
        return the *identical* object from the in-memory tier.
        """
        key = CacheKey(producer_id, seed, params_hash(params))
        with self._master:
            entry = self._entries.get(key)
            if entry is None:
                entry = self._entries[key] = _Entry()
        with entry.lock:
            if entry.computed:
                self._count_hit(producer_id)
                return entry.value
            if self.cache_dir is not None:
                try:
                    cached = load_cached_artifact_checked(
                        self.cache_dir, producer_id, seed, key.params_hash)
                except CacheCorruptionError as exc:
                    self._count_corruption(key, exc)
                else:
                    if cached is not None:
                        entry.value = cached
                        entry.computed = True
                        self._count_hit(producer_id, disk=True)
                        return cached
            start = time.perf_counter()
            value = compute()
            elapsed = time.perf_counter() - start
            entry.value = value
            entry.computed = True
            self._count_miss(producer_id, elapsed)
            if self.cache_dir is not None:
                save_cached_artifact(self.cache_dir, producer_id, seed,
                                     key.params_hash, value)
                self._maybe_inject_corruption(key)
            return value

    # ------------------------------------------------------------------
    def _count_hit(self, producer_id: str, disk: bool = False) -> None:
        with self._master:
            self._stats.hits += 1
            if disk:
                self._stats.disk_hits += 1
            by = self._stats.hits_by_producer
            by[producer_id] = by.get(producer_id, 0) + 1

    def _count_miss(self, producer_id: str, seconds: float) -> None:
        with self._master:
            self._stats.misses += 1
            by = self._stats.misses_by_producer
            by[producer_id] = by.get(producer_id, 0) + 1
            times = self._stats.compute_seconds
            times[producer_id] = times.get(producer_id, 0.0) + seconds

    def _count_corruption(self, key: CacheKey,
                          exc: CacheCorruptionError) -> None:
        """Count a corrupt disk entry; warn once per key."""
        with self._master:
            self._stats.disk_corruptions += 1
            by = self._stats.corruptions_by_producer
            by[key.producer_id] = by.get(key.producer_id, 0) + 1
            first = key not in self._warned_corrupt
            self._warned_corrupt.add(key)
        if first:
            logger.warning(
                "corrupt disk cache entry for producer %r (seed %d): %s "
                "— recomputing", key.producer_id, key.seed, exc.reason)

    def _maybe_inject_corruption(self, key: CacheKey) -> None:
        """Chaos seam: garble the entry just written, when told to."""
        faults = self.faults
        if faults is None or not getattr(faults, "should_corrupt_cache",
                                         None):
            return
        if not faults.should_corrupt_cache(key.producer_id):
            return
        path = artifact_cache_path(self.cache_dir, key.producer_id,
                                   key.seed, key.params_hash)
        if path.is_file():
            # Keep the file present but unreadable: the next cold load
            # must *detect* this, not see a plain miss.
            path.write_bytes(b"\x00chaos-corrupted\x00")

    # ------------------------------------------------------------------
    @property
    def stats(self) -> StoreStats:
        """A snapshot of the counters (safe to read while running)."""
        with self._master:
            return StoreStats(
                hits=self._stats.hits,
                misses=self._stats.misses,
                disk_hits=self._stats.disk_hits,
                disk_corruptions=self._stats.disk_corruptions,
                misses_by_producer=dict(self._stats.misses_by_producer),
                hits_by_producer=dict(self._stats.hits_by_producer),
                compute_seconds=dict(self._stats.compute_seconds),
                corruptions_by_producer=dict(
                    self._stats.corruptions_by_producer),
            )

    def merge_stats(self, other: StoreStats) -> None:
        """Fold a worker process's counters into this store's stats."""
        with self._master:
            self._stats.merge(other)

    def clear_memory(self) -> None:
        """Drop the in-memory tier (disk survives); counters keep counting."""
        with self._master:
            self._entries.clear()
