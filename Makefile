# EdgeReasoning reproduction — workflow automation.
#
# Mirrors the paper artifact's Make-driven workflow: setup, run the
# evaluation suites, regenerate every table/figure, and collect outputs.

PYTHON ?= python
OUTPUT ?= outputs

.PHONY: setup test lint bench chaos chaos-pipeline chaos-fleet chaos-overload chaos-autoscale chaos-tiering perf perf-100k perf-1m perf-tiering perf-baseline reproduce reproduce-fast examples fidelity takeaways clean

## Install the package in editable mode (legacy path works offline).
setup:
	$(PYTHON) -m pip install -e . || $(PYTHON) setup.py develop

## Run the full test suite.
test:
	$(PYTHON) -m pytest tests/

## Static checks (style, imports, bugbear) over src/ and tests/.
lint:
	$(PYTHON) -m ruff check src tests

## Regenerate every paper table and figure, timed.
bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

## Same, printing each artifact's rows/series.
bench-verbose:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -s

## Fault-injection suite: resilience tests + the seeded chaos sweep.
chaos:
	$(PYTHON) -m pytest tests/test_faults_injector.py \
	    tests/test_hardware_thermal.py \
	    tests/test_engine_server_resilience.py \
	    tests/test_engine_server_overload.py
	$(PYTHON) -m repro chaos --seed 0

## Chaos-test the artifact pipeline itself: every artifact at the smoke
## tier under injected producer faults and cache corruption, then a
## crash/resume cycle; exits nonzero unless everything recovered with
## byte-identical outputs.
chaos-pipeline:
	PYTHONPATH=src $(PYTHON) -m repro chaos --pipeline --seed 0

## Fleet chaos: kill 2 of 4 devices mid-run under seeded faults; exits
## nonzero unless every request reached a terminal outcome, the kills
## actually fired, and a rerun reproduced the report byte-for-byte.
chaos-fleet:
	$(PYTHON) -m pytest tests/test_fleet_chaos.py
	PYTHONPATH=src $(PYTHON) -m repro chaos --fleet --seed 0

## Overload survival: 3x-capacity flash crowd into a flapping,
## thermally throttled fleet; exits nonzero unless conservation holds
## exactly, a brownout tier engaged and recovered, and same-seed reruns
## are byte-identical under both thread and process executors.
chaos-overload:
	$(PYTHON) -m pytest tests/test_fleet_overload.py tests/test_fleet_health.py
	PYTHONPATH=src $(PYTHON) -m repro chaos --overload --seed 0

## Autoscale lifecycle survival drill: a diurnal cycle plus flash crowd
## into an autoscaled fleet with crashes delivered mid-drain and
## mid-wake; exits nonzero unless no request is lost, flapping stays
## within the hysteresis bound, autoscaled energy beats always-on at
## equal-or-better attainment, and same-seed reruns are byte-identical
## under both thread and process executors.
chaos-autoscale:
	$(PYTHON) -m pytest tests/test_fleet_autoscale.py
	PYTHONPATH=src $(PYTHON) -m repro chaos --autoscale --seed 0

## Tiering gate: budget-aware Fast/Deep/Verify routing of the agentic
## DAG suite; exits nonzero unless the budget-aware frontier strictly
## dominates at least one fixed single-tier assignment on accuracy per
## joule at equal attainment, conservation is exact over DAG children,
## and same-seed reruns are byte-identical under both thread and
## process pipeline executors.
chaos-tiering:
	$(PYTHON) -m pytest tests/test_tiering_policy.py \
	    tests/test_tiering_dag.py tests/test_tiering_gateway.py
	PYTHONPATH=src $(PYTHON) -m repro chaos --tiering --seed 0

## Perf-regression harness: time the representative workloads, write
## BENCH_pipeline.json / BENCH_engine.json, and fail on >25% regression
## against benchmarks/baselines/ (or the span-speedup ratio floor).
perf:
	PYTHONPATH=src $(PYTHON) -m repro perf --check --out $(OUTPUT)

## 100k-scale vector event-loop gates only: the scalar/vector speedup
## ratio floor (>=10x, machine-independent) and the 100k-request,
## 64-device run's hard wall-clock budget.
perf-100k:
	PYTHONPATH=src $(PYTHON) -m repro perf --check \
	    --only fleet_vector_speedup,fleet_100k --out $(OUTPUT)

## Population-scale gates only: the streaming-trace vs pre-PR-gateway
## routing speedup floor (>=3x, per-request normalized) and the
## 1M-request, 32-device diurnal run's hard wall-clock budget (<=60s).
perf-1m:
	PYTHONPATH=src $(PYTHON) -m repro perf --check \
	    --only fleet_routing_speedup,fleet_diurnal_1m --out $(OUTPUT)

## Tiered-DAG gate only: one budget-aware agentic suite run through
## the gateway against its committed absolute-time baseline.
perf-tiering:
	PYTHONPATH=src $(PYTHON) -m repro perf --check \
	    --only fleet_tiered_dag --out $(OUTPUT)

## Refresh the committed perf baselines (run on a quiet machine).
perf-baseline:
	PYTHONPATH=src $(PYTHON) -m repro perf --out benchmarks/baselines

## Write every artifact's text into $(OUTPUT)/.
reproduce:
	$(PYTHON) -m repro reproduce --output $(OUTPUT)

## Smoke-tier sweep of every artifact through the memoizing pipeline:
## small producer sizes, 4 parallel jobs, shared intermediates computed
## exactly once, per-artifact timing printed at the end.
reproduce-fast:
	PYTHONPATH=src $(PYTHON) -m repro run --all --jobs 4 --smoke --timing

## Run all example applications.
examples:
	$(PYTHON) examples/quickstart.py
	$(PYTHON) examples/fleet_cost_analysis.py
	$(PYTHON) examples/interactive_latency.py
	$(PYTHON) examples/optimization_advisor.py
	$(PYTHON) examples/token_budget_tuning.py
	$(PYTHON) examples/assistive_robot.py

## The paper-vs-repo audit and the eleven takeaway checks.
fidelity:
	$(PYTHON) -m repro run fidelity

takeaways:
	$(PYTHON) -m repro run takeaways

clean:
	rm -rf $(OUTPUT) .pytest_cache .benchmarks
	find . -name __pycache__ -type d -exec rm -rf {} +
