"""Tests for the benchmark evaluator."""

import numpy as np
import pytest

from repro.core.cost import CostModel
from repro.evaluation.evaluator import Evaluator
from repro.evaluation.metrics import mape, pareto_front_mask
from repro.generation.control import (
    base_control,
    direct_control,
    hard_budget,
    nr_control,
    soft_budget,
)
from repro.models.registry import get_model


@pytest.fixture(scope="module")
def evaluator():
    from repro.workloads.mmlu_redux import mmlu_redux
    return Evaluator(mmlu_redux(seed=0, size=600), seed=0)


class TestAccuracyAnchors:
    """Evaluated accuracies must land near the paper's Table X/XI rows."""

    @pytest.mark.parametrize("model,control,expected,tol", [
        ("dsr1-qwen-1.5b", base_control(), 0.383, 0.03),
        ("dsr1-llama-8b", base_control(), 0.617, 0.03),
        ("dsr1-qwen-14b", base_control(), 0.806, 0.04),
        ("dsr1-llama-8b", hard_budget(128), 0.379, 0.02),
        ("dsr1-qwen-14b", hard_budget(256), 0.586, 0.02),
        ("dsr1-qwen-1.5b", nr_control(), 0.410, 0.02),
        ("l1-max", hard_budget(128), 0.162, 0.03),
        ("llama3.1-8b-it", direct_control(), 0.583, 0.02),
    ])
    def test_table_rows(self, evaluator, model, control, expected, tol):
        result = evaluator.evaluate(get_model(model), control)
        assert result.accuracy == pytest.approx(expected, abs=tol)

    def test_token_means_match(self, evaluator):
        result = evaluator.evaluate(get_model("dsr1-llama-8b"), base_control())
        assert result.mean_output_tokens == pytest.approx(811.1, rel=0.10)

    def test_hard_budget_truncates_tokens(self, evaluator):
        result = evaluator.evaluate(get_model("dsr1-llama-8b"), hard_budget(128))
        assert result.per_question.output_tokens.max() <= 140

    def test_soft_budget_overshoots(self, evaluator):
        result = evaluator.evaluate(get_model("dsr1-qwen-14b"), soft_budget(128))
        # Paper: NC-128 on the 14B emits ~4.7x the nominal budget.
        assert result.mean_output_tokens > 3 * 128


class TestSystemMetrics:
    def test_base_latency_matches_table_x(self, evaluator):
        result = evaluator.evaluate(get_model("dsr1-llama-8b"), base_control())
        assert result.mean_latency_seconds == pytest.approx(87.16, rel=0.25)

    def test_latency_positive_per_question(self, evaluator):
        result = evaluator.evaluate(get_model("dsr1-qwen-1.5b"), base_control())
        assert (result.per_question.latency_seconds > 0).all()

    def test_energy_positive_per_question(self, evaluator):
        result = evaluator.evaluate(get_model("dsr1-qwen-1.5b"), base_control())
        assert (result.per_question.energy_joules > 0).all()

    def test_decode_dominates(self, evaluator):
        result = evaluator.evaluate(get_model("dsr1-qwen-14b"), base_control())
        assert result.prefill_to_decode_latency_ratio > 100

    def test_cost_in_paper_band(self, evaluator):
        result = evaluator.evaluate(get_model("dsr1-llama-8b"), base_control())
        # Table X: $0.111 / 1M tokens.
        assert result.cost_per_million_tokens == pytest.approx(0.111, rel=0.3)

    def test_bigger_model_costs_more(self, evaluator):
        small = evaluator.evaluate(get_model("dsr1-qwen-1.5b"), base_control())
        large = evaluator.evaluate(get_model("dsr1-qwen-14b"), base_control())
        assert large.cost_per_million_tokens > small.cost_per_million_tokens

    def test_label_and_tps(self, evaluator):
        result = evaluator.evaluate(get_model("dsr1-llama-8b"), base_control())
        assert result.label == "DSR1-Llama-8B Base"
        assert result.tokens_per_second == pytest.approx(10.0, rel=0.2)

    def test_custom_cost_model(self):
        from repro.workloads.mmlu_redux import mmlu_redux
        bench = mmlu_redux(seed=0, size=100)
        single = Evaluator(bench, cost_model=CostModel.single_stream())
        batched = Evaluator(bench, cost_model=CostModel(serving_batch=30))
        model = get_model("dsr1-qwen-1.5b")
        assert (single.evaluate(model, base_control()).cost_per_million_tokens
                > batched.evaluate(model, base_control()).cost_per_million_tokens)


class TestDeterminismAndCaching:
    def test_same_seed_same_result(self):
        from repro.workloads.mmlu_redux import mmlu_redux
        bench = mmlu_redux(seed=0, size=100)
        a = Evaluator(bench, seed=5).evaluate(get_model("dsr1-llama-8b"),
                                              base_control())
        b = Evaluator(bench, seed=5).evaluate(get_model("dsr1-llama-8b"),
                                              base_control())
        assert a.accuracy == b.accuracy
        assert a.mean_latency_seconds == b.mean_latency_seconds

    def test_engine_cached_per_model(self, evaluator):
        model = get_model("dsr1-llama-8b")
        assert evaluator.engine_for(model) is evaluator.engine_for(model)


class TestQuestionStatistics:
    def test_shapes_and_ranges(self, evaluator):
        p, w, g, det = evaluator.question_statistics(
            get_model("dsr1-qwen-14b"), hard_budget(128))
        n = len(evaluator.benchmark)
        for arr in (p, w, g, det):
            assert arr.shape == (n,)
            assert (arr >= 0).all() and (arr <= 1).all()

    def test_mean_p_matches_hard_curve(self, evaluator):
        p, *_ = evaluator.question_statistics(
            get_model("dsr1-qwen-14b"), hard_budget(128))
        assert p.mean() == pytest.approx(0.461, abs=0.01)

    def test_generous_budget_more_deterministic(self, evaluator):
        *_, det_small = evaluator.question_statistics(
            get_model("dsr1-qwen-1.5b"), hard_budget(128))
        *_, det_large = evaluator.question_statistics(
            get_model("dsr1-qwen-1.5b"), hard_budget(2048))
        assert det_large.mean() > det_small.mean()


class TestMetrics:
    def test_mape_basic(self):
        assert mape(np.array([1.1, 0.9]), np.array([1.0, 1.0])) == pytest.approx(10.0)

    def test_mape_zero_measured_rejected(self):
        with pytest.raises(ValueError):
            mape(np.array([1.0]), np.array([0.0]))

    def test_mape_misaligned(self):
        with pytest.raises(ValueError):
            mape(np.ones(2), np.ones(3))

    def test_pareto_front_mask(self):
        costs = np.array([1.0, 2.0, 3.0])
        values = np.array([0.5, 0.4, 0.9])
        mask = pareto_front_mask(costs, values)
        assert list(mask) == [True, False, True]
