"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert args.model == "dsr1-llama-8b"
        assert args.parallel == 1

    def test_plan_requires_budget(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["plan"])

    def test_chaos_defaults(self):
        args = build_parser().parse_args(["chaos"])
        assert args.model == "dsr1-qwen-1.5b"
        assert args.seed == 0
        assert args.deadline == 40.0

    def test_run_pipeline_flags(self):
        args = build_parser().parse_args(
            ["run", "--all", "--jobs", "4", "--timing", "--smoke",
             "--cache-dir", "/tmp/cache"])
        assert args.all and args.artifact is None
        assert args.jobs == 4 and args.timing and args.smoke
        assert args.cache_dir == "/tmp/cache"

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "table9"])
        assert args.artifact == "table9"
        assert not args.all and args.jobs == 1
        assert not args.timing and args.timing_json is None
        assert not args.keep_going and args.retries == 0
        assert args.timeout is None and args.resume is None

    def test_run_supervision_flags(self):
        args = build_parser().parse_args(
            ["run", "--all", "--keep-going", "--retries", "2",
             "--timeout", "30"])
        assert args.keep_going and args.retries == 2
        assert args.timeout == 30.0

    def test_run_resume_flag(self):
        args = build_parser().parse_args(
            ["run", "--resume", "20260101-000000-abcd1234",
             "--cache-dir", "/tmp/cache"])
        assert args.resume == "20260101-000000-abcd1234"
        assert not args.all and args.artifact is None

    def test_chaos_pipeline_flags(self):
        args = build_parser().parse_args(
            ["chaos", "--pipeline", "--fail-rate", "0.5", "--retries", "4"])
        assert args.pipeline
        assert args.fail_rate == 0.5 and args.retries == 4


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table11" in out and "fig7" in out

    def test_models(self, capsys):
        assert main(["models"]) == 0
        out = capsys.readouterr().out
        assert "dsr1-llama-8b" in out
        assert "llmc-awq-w4" in out

    def test_simulate(self, capsys):
        code = main(["simulate", "--model", "dsr1-qwen-1.5b",
                     "--prompt", "100", "--output", "64"])
        assert code == 0
        out = capsys.readouterr().out
        assert "decode" in out and "energy" in out

    def test_simulate_parallel(self, capsys):
        assert main(["simulate", "--model", "dsr1-qwen-1.5b",
                     "--output", "64", "--parallel", "8"]) == 0
        assert "batch 8" in capsys.readouterr().out

    def test_run_artifact(self, capsys):
        assert main(["run", "table9"]) == 0
        assert "Table IX" in capsys.readouterr().out

    def test_run_unknown_artifact(self):
        with pytest.raises(KeyError):
            main(["run", "fig99"])

    def test_run_without_artifact_or_all_errors(self, capsys):
        assert main(["run"]) == 2
        assert "artifact id, --all, or --resume" in capsys.readouterr().err

    def test_run_all_timing_and_json(self, capsys, monkeypatch, tmp_path):
        # Shrink the registry so --all stays fast: three artifacts, two
        # sharing the tradeoff grid.
        import repro.experiments.runner as runner_mod
        from repro.pipeline.graph import DependencyGraph
        from repro.pipeline.registry import ARTIFACTS, PRODUCERS

        subset = ("fig6", "fig7", "table9")
        small = DependencyGraph(
            PRODUCERS, {k: ARTIFACTS[k] for k in subset})
        monkeypatch.setattr(runner_mod, "default_graph", lambda: small)

        timing_json = tmp_path / "timing.json"
        code = main(["run", "--all", "--jobs", "2", "--smoke", "--timing",
                     "--timing-json", str(timing_json)])
        assert code == 0
        out = capsys.readouterr().out
        assert "=== fig6 ===" in out and "=== table9 ===" in out
        assert "Table IX" in out
        assert "Pipeline timing" in out and "wall time" in out
        assert "tradeoff_grid" in out

        from repro.evaluation.export import read_timing_json
        records = read_timing_json(timing_json)
        kinds = {record["kind"] for record in records}
        assert kinds == {"artifact", "producer", "run"}

    def test_run_all_journal_then_resume_round_trip(self, tmp_path, capsys,
                                                    monkeypatch):
        import repro.experiments.runner as runner_mod
        from repro.pipeline.graph import DependencyGraph
        from repro.pipeline.registry import ARTIFACTS, PRODUCERS

        subset = ("fig6", "fig7")
        small = DependencyGraph(
            PRODUCERS, {k: ARTIFACTS[k] for k in subset})
        monkeypatch.setattr(runner_mod, "default_graph", lambda: small)

        assert main(["run", "--all", "--smoke",
                     "--cache-dir", str(tmp_path)]) == 0
        captured = capsys.readouterr()
        assert "run id: " in captured.err and "--resume" in captured.err
        run_id = captured.err.split("run id: ")[1].split()[0]

        assert main(["run", "--resume", run_id,
                     "--cache-dir", str(tmp_path)]) == 0
        resumed = capsys.readouterr()
        assert f"resuming run {run_id}" in resumed.err
        assert "2 committed" in resumed.err
        # Byte-identical artifact sections on resume.
        assert resumed.out == captured.out

    def test_run_resume_unknown_id_lists_known_runs(self, tmp_path, capsys):
        assert main(["run", "--resume", "ghost",
                     "--cache-dir", str(tmp_path)]) == 2
        err = capsys.readouterr().err
        assert "ghost" in err and "known runs" in err

    def test_run_resume_without_cache_dir_errors(self, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        assert main(["run", "--resume", "whatever"]) == 2
        assert "--cache-dir" in capsys.readouterr().err

    def test_run_keep_going_quarantines_and_exits_nonzero(self, capsys,
                                                          monkeypatch):
        import repro.experiments.runner as runner_mod
        from repro.pipeline.graph import (
            ArtifactSpec,
            DependencyGraph,
        )
        from repro.pipeline.registry import ARTIFACTS, PRODUCERS

        def boom(seed):
            raise ValueError("rigged")

        artifacts = {"fig6": ARTIFACTS["fig6"],
                     "boom": ArtifactSpec("boom", boom)}
        broken = DependencyGraph(PRODUCERS, artifacts)
        monkeypatch.setattr(runner_mod, "default_graph", lambda: broken)

        assert main(["run", "--all", "--smoke", "--keep-going"]) == 1
        captured = capsys.readouterr()
        assert "1 artifact(s) quarantined" in captured.err
        assert "partial results: 1 of 2" in captured.err
        assert "=== fig6 ===" in captured.out  # the healthy one completed

    def test_run_fail_fast_exits_nonzero_naming_artifact(self, capsys,
                                                         monkeypatch):
        import repro.experiments.runner as runner_mod
        from repro.pipeline.graph import ArtifactSpec, DependencyGraph

        def boom(seed):
            raise ValueError("rigged")

        broken = DependencyGraph({}, {"boom": ArtifactSpec("boom", boom)})
        monkeypatch.setattr(runner_mod, "default_graph", lambda: broken)
        assert main(["run", "--all", "--smoke"]) == 1
        assert "'boom' failed" in capsys.readouterr().err

    def test_run_cache_dir_persists_across_invocations(self, tmp_path,
                                                       capsys):
        argv = ["run", "table7", "--smoke", "--cache-dir", str(tmp_path)]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert list(tmp_path.glob("*.pkl"))
        # Second invocation hits the disk tier and reproduces the output.
        assert main(argv) == 0
        assert capsys.readouterr().out == first

    def test_run_env_cache_dir(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert main(["run", "table9"]) == 0
        assert list(tmp_path.glob("*.pkl"))

    def test_reproduce_writes_artifacts(self, capsys, tmp_path):
        code = main(["reproduce", "--output", str(tmp_path),
                     "--only", "table9"])
        assert code == 0
        assert (tmp_path / "table9.txt").exists()
        assert "Table IX" in (tmp_path / "table9.txt").read_text()

    def test_reproduce_jobs_match_serial(self, capsys, tmp_path):
        names = ("fig6", "fig7", "table9")
        serial_dir, parallel_dir = tmp_path / "serial", tmp_path / "parallel"
        assert main(["reproduce", "--output", str(serial_dir),
                     "--only", ",".join(names), "--smoke"]) == 0
        assert main(["reproduce", "--output", str(parallel_dir),
                     "--only", ",".join(names), "--jobs", "4",
                     "--smoke", "--timing"]) == 0
        for name in names:
            assert ((serial_dir / f"{name}.txt").read_text()
                    == (parallel_dir / f"{name}.txt").read_text())
        assert "Pipeline timing" in capsys.readouterr().out

    def test_reproduce_charts_mode(self, capsys, tmp_path):
        code = main(["reproduce", "--output", str(tmp_path),
                     "--only", "fig3b", "--charts"])
        assert code == 0
        text = (tmp_path / "fig3b.txt").read_text()
        assert "|" in text  # chart grid, not point listings

    def test_chaos(self, capsys):
        # Small stream keeps the chaos sweep fast; exit 0 certifies the
        # degradation-on run matched or beat the baseline hit rate.
        code = main(["chaos", "--requests", "12", "--qps", "3",
                     "--seed", "0"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Resilience ablation" in out
        assert "degradation on" in out
        assert "hit rate" in out

    def test_perf_list_prints_catalog_without_running(self, capsys):
        code = main(["perf", "--list"])
        assert code == 0
        out = capsys.readouterr().out
        assert "fleet_100k" in out
        assert "serving_span_speedup" in out
        assert "ratio" in out and "time" in out
        # Listing must not write any bench file.
        assert "benchmarks ->" not in out

    def test_perf_unknown_only_fails_fast_with_available_set(self, capsys):
        code = main(["perf", "--only", "no_such_workload"])
        assert code == 2
        err = capsys.readouterr().err
        assert "no_such_workload" in err
        assert "fleet_100k" in err  # the available set is printed

    def test_perf_profile_prints_top_functions(self, capsys):
        code = main(["perf", "--profile", "5", "--only",
                     "serving_span_speedup", "--repeats", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "cumulative" in out
        assert "ncalls" in out

    def test_perf_profile_requires_exactly_one_workload(self, capsys):
        assert main(["perf", "--profile", "5"]) == 2
        assert main(["perf", "--profile", "5", "--only",
                     "serving_span_speedup,fleet_fixed_qps"]) == 2
        assert main(["perf", "--profile", "0", "--only",
                     "serving_span_speedup"]) == 2
        err = capsys.readouterr().err
        assert "--profile" in err

    def test_characterize_writes_json(self, capsys, tmp_path):
        out = tmp_path / "models.json"
        code = main(["characterize", "--model", "dsr1-qwen-1.5b",
                     "--output", str(out)])
        assert code == 0
        assert out.exists()
        from repro.core.persistence import load_models
        assert load_models(out)["model"] == "dsr1-qwen-1.5b"
