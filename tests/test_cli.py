"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert args.model == "dsr1-llama-8b"
        assert args.parallel == 1

    def test_plan_requires_budget(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["plan"])

    def test_chaos_defaults(self):
        args = build_parser().parse_args(["chaos"])
        assert args.model == "dsr1-qwen-1.5b"
        assert args.seed == 0
        assert args.deadline == 40.0

    def test_run_pipeline_flags(self):
        args = build_parser().parse_args(
            ["run", "--all", "--jobs", "4", "--timing", "--smoke",
             "--cache-dir", "/tmp/cache"])
        assert args.all and args.artifact is None
        assert args.jobs == 4 and args.timing and args.smoke
        assert args.cache_dir == "/tmp/cache"

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "table9"])
        assert args.artifact == "table9"
        assert not args.all and args.jobs == 1
        assert not args.timing and args.timing_json is None


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table11" in out and "fig7" in out

    def test_models(self, capsys):
        assert main(["models"]) == 0
        out = capsys.readouterr().out
        assert "dsr1-llama-8b" in out
        assert "llmc-awq-w4" in out

    def test_simulate(self, capsys):
        code = main(["simulate", "--model", "dsr1-qwen-1.5b",
                     "--prompt", "100", "--output", "64"])
        assert code == 0
        out = capsys.readouterr().out
        assert "decode" in out and "energy" in out

    def test_simulate_parallel(self, capsys):
        assert main(["simulate", "--model", "dsr1-qwen-1.5b",
                     "--output", "64", "--parallel", "8"]) == 0
        assert "batch 8" in capsys.readouterr().out

    def test_run_artifact(self, capsys):
        assert main(["run", "table9"]) == 0
        assert "Table IX" in capsys.readouterr().out

    def test_run_unknown_artifact(self):
        with pytest.raises(KeyError):
            main(["run", "fig99"])

    def test_run_without_artifact_or_all_errors(self, capsys):
        assert main(["run"]) == 2
        assert "artifact id or --all" in capsys.readouterr().err

    def test_run_all_timing_and_json(self, capsys, monkeypatch, tmp_path):
        # Shrink the registry so --all stays fast: three artifacts, two
        # sharing the tradeoff grid.
        import repro.experiments.runner as runner_mod
        from repro.pipeline.graph import DependencyGraph
        from repro.pipeline.registry import ARTIFACTS, PRODUCERS

        subset = ("fig6", "fig7", "table9")
        small = DependencyGraph(
            PRODUCERS, {k: ARTIFACTS[k] for k in subset})
        monkeypatch.setattr(runner_mod, "default_graph", lambda: small)

        timing_json = tmp_path / "timing.json"
        code = main(["run", "--all", "--jobs", "2", "--smoke", "--timing",
                     "--timing-json", str(timing_json)])
        assert code == 0
        out = capsys.readouterr().out
        assert "=== fig6 ===" in out and "=== table9 ===" in out
        assert "Table IX" in out
        assert "Pipeline timing" in out and "wall time" in out
        assert "tradeoff_grid" in out

        from repro.evaluation.export import read_timing_json
        records = read_timing_json(timing_json)
        kinds = {record["kind"] for record in records}
        assert kinds == {"artifact", "producer", "run"}

    def test_run_cache_dir_persists_across_invocations(self, tmp_path,
                                                       capsys):
        argv = ["run", "table7", "--smoke", "--cache-dir", str(tmp_path)]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert list(tmp_path.glob("*.pkl"))
        # Second invocation hits the disk tier and reproduces the output.
        assert main(argv) == 0
        assert capsys.readouterr().out == first

    def test_run_env_cache_dir(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert main(["run", "table9"]) == 0
        assert list(tmp_path.glob("*.pkl"))

    def test_reproduce_writes_artifacts(self, capsys, tmp_path):
        code = main(["reproduce", "--output", str(tmp_path),
                     "--only", "table9"])
        assert code == 0
        assert (tmp_path / "table9.txt").exists()
        assert "Table IX" in (tmp_path / "table9.txt").read_text()

    def test_reproduce_jobs_match_serial(self, capsys, tmp_path):
        names = ("fig6", "fig7", "table9")
        serial_dir, parallel_dir = tmp_path / "serial", tmp_path / "parallel"
        assert main(["reproduce", "--output", str(serial_dir),
                     "--only", ",".join(names), "--smoke"]) == 0
        assert main(["reproduce", "--output", str(parallel_dir),
                     "--only", ",".join(names), "--jobs", "4",
                     "--smoke", "--timing"]) == 0
        for name in names:
            assert ((serial_dir / f"{name}.txt").read_text()
                    == (parallel_dir / f"{name}.txt").read_text())
        assert "Pipeline timing" in capsys.readouterr().out

    def test_reproduce_charts_mode(self, capsys, tmp_path):
        code = main(["reproduce", "--output", str(tmp_path),
                     "--only", "fig3b", "--charts"])
        assert code == 0
        text = (tmp_path / "fig3b.txt").read_text()
        assert "|" in text  # chart grid, not point listings

    def test_chaos(self, capsys):
        # Small stream keeps the chaos sweep fast; exit 0 certifies the
        # degradation-on run matched or beat the baseline hit rate.
        code = main(["chaos", "--requests", "12", "--qps", "3",
                     "--seed", "0"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Resilience ablation" in out
        assert "degradation on" in out
        assert "hit rate" in out

    def test_characterize_writes_json(self, capsys, tmp_path):
        out = tmp_path / "models.json"
        code = main(["characterize", "--model", "dsr1-qwen-1.5b",
                     "--output", str(out)])
        assert code == 0
        assert out.exists()
        from repro.core.persistence import load_models
        assert load_models(out)["model"] == "dsr1-qwen-1.5b"
