"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert args.model == "dsr1-llama-8b"
        assert args.parallel == 1

    def test_plan_requires_budget(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["plan"])

    def test_chaos_defaults(self):
        args = build_parser().parse_args(["chaos"])
        assert args.model == "dsr1-qwen-1.5b"
        assert args.seed == 0
        assert args.deadline == 40.0


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table11" in out and "fig7" in out

    def test_models(self, capsys):
        assert main(["models"]) == 0
        out = capsys.readouterr().out
        assert "dsr1-llama-8b" in out
        assert "llmc-awq-w4" in out

    def test_simulate(self, capsys):
        code = main(["simulate", "--model", "dsr1-qwen-1.5b",
                     "--prompt", "100", "--output", "64"])
        assert code == 0
        out = capsys.readouterr().out
        assert "decode" in out and "energy" in out

    def test_simulate_parallel(self, capsys):
        assert main(["simulate", "--model", "dsr1-qwen-1.5b",
                     "--output", "64", "--parallel", "8"]) == 0
        assert "batch 8" in capsys.readouterr().out

    def test_run_artifact(self, capsys):
        assert main(["run", "table9"]) == 0
        assert "Table IX" in capsys.readouterr().out

    def test_run_unknown_artifact(self):
        with pytest.raises(KeyError):
            main(["run", "fig99"])

    def test_reproduce_writes_artifacts(self, capsys, tmp_path):
        code = main(["reproduce", "--output", str(tmp_path),
                     "--only", "table9"])
        assert code == 0
        assert (tmp_path / "table9.txt").exists()
        assert "Table IX" in (tmp_path / "table9.txt").read_text()

    def test_reproduce_charts_mode(self, capsys, tmp_path):
        code = main(["reproduce", "--output", str(tmp_path),
                     "--only", "fig3b", "--charts"])
        assert code == 0
        text = (tmp_path / "fig3b.txt").read_text()
        assert "|" in text  # chart grid, not point listings

    def test_chaos(self, capsys):
        # Small stream keeps the chaos sweep fast; exit 0 certifies the
        # degradation-on run matched or beat the baseline hit rate.
        code = main(["chaos", "--requests", "12", "--qps", "3",
                     "--seed", "0"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Resilience ablation" in out
        assert "degradation on" in out
        assert "hit rate" in out

    def test_characterize_writes_json(self, capsys, tmp_path):
        out = tmp_path / "models.json"
        code = main(["characterize", "--model", "dsr1-qwen-1.5b",
                     "--output", str(out)])
        assert code == 0
        assert out.exists()
        from repro.core.persistence import load_models
        assert load_models(out)["model"] == "dsr1-qwen-1.5b"
