"""Span pricing in the serving simulator must be invisible to results.

``ServingSimulator`` prices multi-token decode spans between events in
one vectorized kernel call; ``max_span_steps=1`` forces the original
per-token stepping.  Every served-request tuple — finish times, TTFT,
energy, preemption counts — must be bit-identical between the two, for
every scheduling policy, under degradation timeouts, and under a paged
KV cache tight enough to force preemptions mid-span.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine.engine import InferenceEngine
from repro.engine.kv_cache import KVCacheConfig, PagedKVCache
from repro.engine.request import GenerationRequest
from repro.engine.server import ServingSimulator
from repro.faults.degradation import DegradationPolicy
from repro.models.registry import get_model


@pytest.fixture(scope="module")
def engine():
    return InferenceEngine(get_model("dsr1-qwen-1.5b"))


def _requests(count, output=96, prompt=120):
    return [GenerationRequest(i, prompt, output) for i in range(count)]


def _served_key(report):
    return [(r.request_id, r.arrival_s, r.start_s, r.finish_s,
             r.prompt_tokens, r.output_tokens, r.deadline_s, r.prefill_s,
             r.attempts, r.degraded) for r in report.served]


def _run_pair(engine, requests, arrivals, deadlines=None, **kwargs):
    spans = ServingSimulator(engine, **kwargs).run(
        requests, arrivals, deadlines)
    steps = ServingSimulator(engine, max_span_steps=1, **kwargs).run(
        requests, arrivals, deadlines)
    return spans, steps


class TestSpanEquivalence:
    @pytest.mark.parametrize("policy", ["fcfs", "edf"])
    def test_poisson_stream_bit_identical(self, engine, policy):
        rng = np.random.default_rng(3)
        n = 40
        arrivals = np.cumsum(rng.exponential(0.5, size=n))
        deadlines = (np.full(n, 30.0) if policy == "edf" else None)
        spans, steps = _run_pair(engine, _requests(n), arrivals, deadlines,
                                 max_batch_size=8, policy=policy)
        assert _served_key(spans) == _served_key(steps)
        assert spans.energy_joules == steps.energy_joules
        assert spans.wallclock_s == steps.wallclock_s

    def test_timeout_sweeps_identical(self, engine):
        rng = np.random.default_rng(11)
        n = 24
        arrivals = np.cumsum(rng.exponential(0.3, size=n))
        policy = DegradationPolicy(timeout_s=40.0, retry_on_timeout=True,
                                   max_retries=2)
        spans, steps = _run_pair(engine, _requests(n, output=192), arrivals,
                                 max_batch_size=4, degradation=policy)
        assert _served_key(spans) == _served_key(steps)
        assert spans.timeouts == steps.timeouts
        assert spans.retries == steps.retries

    def test_kv_preemption_identical(self, engine):
        model = get_model("dsr1-qwen-1.5b")
        n = 16
        worst = 120 + 192

        def tight_cache():
            return PagedKVCache(KVCacheConfig(
                bytes_per_token=model.kv_bytes_per_token,
                capacity_bytes=model.kv_bytes_per_token * worst * 8 // 4))

        arrivals = np.zeros(n)
        spans = ServingSimulator(engine, max_batch_size=8,
                                 kv_cache=tight_cache()).run(
            _requests(n, output=192), arrivals)
        steps = ServingSimulator(engine, max_batch_size=8, max_span_steps=1,
                                 kv_cache=tight_cache()).run(
            _requests(n, output=192), arrivals)
        assert spans.preemptions == steps.preemptions
        assert spans.preemptions > 0
        assert _served_key(spans) == _served_key(steps)

    def test_span_cap_respected(self, engine):
        # An explicit cap between 1 and unbounded also matches exactly.
        arrivals = np.zeros(6)
        capped = ServingSimulator(engine, max_batch_size=4,
                                  max_span_steps=7).run(
            _requests(6), arrivals)
        steps = ServingSimulator(engine, max_batch_size=4,
                                 max_span_steps=1).run(
            _requests(6), arrivals)
        assert _served_key(capped) == _served_key(steps)

    def test_rejects_bad_span_cap(self, engine):
        with pytest.raises(ValueError):
            ServingSimulator(engine, max_span_steps=0)
