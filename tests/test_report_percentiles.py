"""Percentile edge cases: all-shed and zero-served reports.

Before ``core/stats.nan_percentile``, each report class hand-rolled its
percentile guard and an empty ``served`` list could crash
``np.percentile`` (or worse, return a misleading 0.0).  These
regressions pin the shared helper's contract across all three report
types: empty populations yield ``nan``, canonical JSON renders it as
the string ``"nan"``, and real percentiles still come out of
``np.percentile`` untouched.
"""

import json
import math

import numpy as np
import pytest

from repro.core.stats import nan_percentile
from repro.engine.server import ResilienceReport, ServingReport
from repro.fleet.report import FleetReport


class TestNanPercentile:
    def test_empty_is_nan(self):
        assert math.isnan(nan_percentile([], 95))

    def test_matches_numpy_on_data(self):
        values = [3.0, 1.0, 4.0, 1.5, 9.0]
        assert nan_percentile(values, 50) == float(np.percentile(values, 50))

    def test_single_value(self):
        assert nan_percentile([2.5], 95) == 2.5

    @pytest.mark.parametrize("q", [-1.0, 101.0])
    def test_rejects_out_of_range_q(self, q):
        with pytest.raises(ValueError):
            nan_percentile([1.0], q)


class TestZeroServedServingReport:
    def _empty(self):
        return ServingReport(served=[], wallclock_s=0.0, energy_joules=0.0,
                             offered_qps=0.0)

    def test_percentiles_are_nan(self):
        report = self._empty()
        assert math.isnan(report.latency_percentile(50))
        assert math.isnan(report.latency_percentile(95))

    def test_hit_rate_is_nan(self):
        assert math.isnan(self._empty().deadline_hit_rate)

    def test_json_renders_nan_strings(self):
        payload = json.loads(self._empty().to_json())
        assert payload["p50_latency_s"] == "nan"
        assert payload["p95_latency_s"] == "nan"
        assert payload["deadline_hit_rate"] == "nan"


class TestAllShedResilienceReport:
    def _all_shed(self, offered=5):
        return ResilienceReport(served=[], wallclock_s=1.0,
                                energy_joules=0.0, offered_qps=5.0,
                                offered=offered, shed=offered)

    def test_percentiles_are_nan(self):
        report = self._all_shed()
        assert math.isnan(report.latency_percentile(95))

    def test_json_is_valid_and_tallies(self):
        report = self._all_shed()
        payload = json.loads(report.to_json())
        assert payload["shed"] == 5
        assert payload["completed"] == 0
        assert payload["p95_latency_s"] == "nan"


class TestZeroServedFleetReport:
    def _empty_fleet(self):
        return FleetReport(policy="round-robin", offered=0, rerouted=0,
                           devices=())

    def test_percentiles_are_nan(self):
        report = self._empty_fleet()
        assert math.isnan(report.latency_percentile(50))
        assert math.isnan(report.latency_percentile(95))
        assert math.isnan(report.deadline_hit_rate)
        assert math.isnan(report.energy_per_request_j)

    def test_json_renders_nan_strings(self):
        payload = json.loads(self._empty_fleet().to_json())
        assert payload["p50_latency_s"] == "nan"
        assert payload["p95_latency_s"] == "nan"
        assert payload["deadline_hit_rate"] == "nan"
        assert payload["lost"] == 0

    def test_gateway_shed_only_run(self):
        """A fleet that shed everything still balances conservation."""
        report = FleetReport(policy="round-robin", offered=7, rerouted=0,
                             devices=(), gateway_shed=7)
        assert report.completed == 0
        assert report.lost == 0
        assert math.isnan(report.latency_percentile(95))
