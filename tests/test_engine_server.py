"""Tests for the event-driven serving simulator."""

import math

import numpy as np
import pytest

from repro.engine.engine import InferenceEngine
from repro.engine.request import GenerationRequest
from repro.engine.server import ServingSimulator
from repro.models.registry import get_model


@pytest.fixture(scope="module")
def simulator():
    return ServingSimulator(InferenceEngine(get_model("dsr1-qwen-1.5b")),
                            max_batch_size=8)


def _requests(count, output=64, prompt=100):
    return [GenerationRequest(i, prompt, output) for i in range(count)]


class TestBasicServing:
    def test_all_requests_served(self, simulator):
        report = simulator.run(_requests(5), np.zeros(5))
        assert report.completed == 5
        assert [r.request_id for r in report.served] == [0, 1, 2, 3, 4]

    def test_output_tokens_conserved(self, simulator):
        report = simulator.run(_requests(4, output=50), np.zeros(4))
        assert report.total_output_tokens == 200

    def test_latency_includes_queueing(self, simulator):
        # 10 simultaneous arrivals, batch cap 8: two must queue.
        sim = ServingSimulator(simulator.engine, max_batch_size=8)
        report = sim.run(_requests(10), np.zeros(10))
        delays = sorted(r.queue_delay_s for r in report.served)
        assert delays[0] < 0.2           # first admitted almost immediately
        assert delays[-1] > 0.5          # last waited for a slot

    def test_spread_arrivals_reduce_queueing(self, simulator):
        burst = simulator.run(_requests(8), np.zeros(8))
        spread = simulator.run(_requests(8), np.arange(8) * 5.0)
        assert (max(r.queue_delay_s for r in spread.served)
                < max(r.queue_delay_s for r in burst.served) + 1e-9)

    def test_energy_positive(self, simulator):
        report = simulator.run(_requests(3), np.zeros(3))
        assert report.energy_joules > 0

    def test_wallclock_spans_last_finish(self, simulator):
        report = simulator.run(_requests(3), np.zeros(3))
        assert report.wallclock_s == pytest.approx(
            max(r.finish_s for r in report.served))

    def test_idle_gap_advances_clock(self, simulator):
        report = simulator.run(_requests(2), np.array([0.0, 100.0]))
        second = report.served[1]
        assert second.start_s >= 100.0

    def test_misaligned_inputs_rejected(self, simulator):
        with pytest.raises(ValueError):
            simulator.run(_requests(2), np.zeros(3))

    def test_bad_batch_cap_rejected(self, simulator):
        with pytest.raises(ValueError):
            ServingSimulator(simulator.engine, max_batch_size=0)


class TestBatchingEconomics:
    def test_higher_load_raises_throughput(self, simulator):
        rng = np.random.default_rng(0)
        low = simulator.run_poisson(rng, qps=0.05, num_requests=40,
                                    output_tokens=128)
        rng = np.random.default_rng(0)
        high = simulator.run_poisson(rng, qps=0.5, num_requests=40,
                                     output_tokens=128)
        assert high.tokens_per_second > 2 * low.tokens_per_second

    def test_higher_load_raises_latency(self, simulator):
        rng = np.random.default_rng(1)
        low = simulator.run_poisson(rng, qps=0.05, num_requests=40,
                                    output_tokens=128)
        rng = np.random.default_rng(1)
        high = simulator.run_poisson(rng, qps=1.0, num_requests=40,
                                     output_tokens=128)
        assert high.latency_percentile(50) > low.latency_percentile(50)

    def test_occupancy_tracks_load(self, simulator):
        rng = np.random.default_rng(2)
        low = simulator.run_poisson(rng, qps=0.05, num_requests=30,
                                    output_tokens=128)
        rng = np.random.default_rng(2)
        high = simulator.run_poisson(rng, qps=0.6, num_requests=30,
                                     output_tokens=128)
        assert high.mean_batch_occupancy > low.mean_batch_occupancy

    def test_percentiles_ordered(self, simulator):
        rng = np.random.default_rng(3)
        report = simulator.run_poisson(rng, qps=0.3, num_requests=30)
        assert (report.latency_percentile(50)
                <= report.latency_percentile(95))

    def test_bad_qps_rejected(self, simulator, rng):
        with pytest.raises(ValueError):
            simulator.run_poisson(rng, qps=0.0, num_requests=5)

    def test_empty_report_properties(self, simulator):
        report = simulator.run([], np.zeros(0))
        assert report.completed == 0
        assert report.achieved_qps == 0.0
        # No completions -> no latency distribution: nan, not a
        # too-good-to-be-true 0.0.
        assert math.isnan(report.latency_percentile(95))
        assert math.isnan(report.deadline_hit_rate)
