"""Overload survival: whole-fleet outages, retry caps, and the gate.

Covers the regression the overload work exists to prevent: a gateway
facing a fleet that never recovers (every device killed with an
infinite outage, or killed at t=0) must end with every request at an
explicit terminal disposition — shed — rather than raising or spinning.
"""

import math

import numpy as np
import pytest

from repro.engine.request import GenerationRequest
from repro.experiments.resilience import (
    OverloadChaosResult,
    overload_chaos_table,
    run_overload_chaos_study,
)
from repro.faults import DeviceFault, FleetFaultConfig, FleetFaultSchedule
from repro.fleet import FleetGateway, build_fleet, poisson_stream


def _stream(seed=0, qps=6.0, count=24, **kwargs):
    return poisson_stream(np.random.default_rng(seed), qps, count, **kwargs)


def _kill_schedule(fleet, start_s, duration_s):
    """A schedule that crashes every device at ``start_s``."""
    names = [device.name for device in fleet]
    schedule = FleetFaultSchedule(names, FleetFaultConfig(), seed=0)
    schedule.events = tuple(
        DeviceFault(name, "crash", start_s, duration_s)
        for name in sorted(names))
    return schedule


class TestWholeFleetOutage:
    def test_kill_all_forever_sheds_everything(self):
        fleet = build_fleet(3)
        schedule = _kill_schedule(fleet, 1e-6, math.inf)
        gateway = FleetGateway(fleet, faults=schedule)
        report = gateway.run(_stream())
        assert report.offered == 24
        assert report.shed == 24
        assert report.completed == 0
        assert report.lost == 0

    def test_kill_all_mid_run_reaches_terminal_outcomes(self):
        fleet = build_fleet(3)
        schedule = _kill_schedule(fleet, 2.0, math.inf)
        gateway = FleetGateway(fleet, faults=schedule)
        report = gateway.run(_stream())
        # Some requests finish before the lights go out; everything
        # else — in-flight work included — is explicitly shed.
        assert report.completed + report.shed + report.failed == 24
        assert report.lost == 0
        assert report.shed > 0

    def test_kill_all_finite_parks_and_serves(self):
        # A finite whole-fleet outage is a wait, not a shed: the
        # gateway parks arrivals on the earliest-recovering device.
        fleet = build_fleet(3)
        schedule = _kill_schedule(fleet, 1e-6, 5.0)
        gateway = FleetGateway(fleet, faults=schedule)
        report = gateway.run(_stream())
        assert report.completed == 24
        assert report.lost == 0

    def test_kill_all_rerun_is_byte_identical(self):
        def run():
            fleet = build_fleet(3)
            gateway = FleetGateway(
                fleet, faults=_kill_schedule(fleet, 2.0, math.inf))
            return gateway.run(_stream()).to_json()

        assert run() == run()


class TestRetryCap:
    def test_exhausted_reroutes_become_failed(self):
        fleet = build_fleet(1)
        schedule = _kill_schedule(fleet, 2.0, 10.0)
        gateway = FleetGateway(fleet, faults=schedule, max_reroutes=0)
        report = gateway.run(_stream())
        # Every evacuated request immediately exhausts the zero-retry
        # budget; nothing may be silently requeued.
        assert report.failed > 0
        assert report.failed == gateway.gateway_failed
        assert report.completed + report.shed + report.failed == 24
        assert report.lost == 0

    def test_default_cap_bounds_attempts(self):
        fleet = build_fleet(2)
        schedule = _kill_schedule(fleet, 2.0, 6.0)
        gateway = FleetGateway(fleet, faults=schedule, max_reroutes=3)
        report = gateway.run(_stream())
        attempts = max(gateway._attempts.values(), default=0)
        assert attempts <= gateway.max_reroutes + 1
        assert report.lost == 0

    def test_negative_cap_rejected(self):
        with pytest.raises(ValueError):
            FleetGateway(build_fleet(1), max_reroutes=-1)


class TestCancelSeam:
    def test_cancel_withdraws_without_touching_counters(self):
        device = build_fleet(1)[0]
        for i in range(3):
            device.inject(GenerationRequest(i, 100, 64), arrival_s=0.0)
        assert device.cancel(1)
        device.drain()
        report = device.report()
        assert report.completed == 2
        assert report.shed == 0
        assert report.failed == 0

    def test_cancel_after_completion_is_a_noop(self):
        device = build_fleet(1)[0]
        device.inject(GenerationRequest(0, 100, 64), arrival_s=0.0)
        device.drain()
        assert not device.cancel(0)
        assert device.report().completed == 1

    def test_cancel_unknown_request_is_false(self):
        device = build_fleet(1)[0]
        assert not device.cancel(99)


class TestOverloadGate:
    @pytest.fixture(scope="class")
    def result(self):
        # Full-size storm, but skip the (slow) thread/process pipeline
        # comparison — the CLI gate exercises it; stub it as passing so
        # the rest of the gate is still asserted.
        return run_overload_chaos_study(seed=0, check_executors=False)

    def test_storm_is_a_real_overload(self, result):
        assert result.overload_factor >= 3.0
        assert result.storm_qps > result.capacity_qps

    def test_conservation_is_exact(self, result):
        assert result.offered == (result.completed + result.shed
                                  + result.failed)
        assert result.lost == 0

    def test_faults_were_delivered(self, result):
        assert result.flapping_devices >= 2
        assert result.thermal_delivered >= 1
        assert result.throttle_residency_s > 0

    def test_brownout_engaged_and_recovered(self, result):
        assert result.max_brownout_tier >= 1
        assert result.recovered_s is not None
        assert result.time_to_slo_recovery_s >= 0

    def test_attempts_respect_the_cap(self, result):
        assert result.max_attempts <= result.max_reroutes + 1

    def test_rerun_is_byte_identical(self, result):
        assert result.rerun_identical

    def test_gate_passes(self, result):
        assert result.survival_ok

    def test_gate_rejects_lossy_runs(self, result):
        import dataclasses
        lossy = dataclasses.replace(result, completed=result.completed - 1,
                                    lost=1)
        assert not lossy.survival_ok

    def test_gate_rejects_vacuous_storms(self, result):
        import dataclasses
        gentle = dataclasses.replace(result, overload_factor=1.5)
        assert not gentle.survival_ok

    def test_gate_rejects_unrecovered_brownouts(self, result):
        import dataclasses
        stuck = dataclasses.replace(result, recovered_s=None)
        assert not stuck.survival_ok

    def test_table_renders(self, result):
        text = overload_chaos_table(result).to_text()
        assert "byte-identical" in text

    def test_result_shape(self, result):
        assert isinstance(result, OverloadChaosResult)
        assert result.report_sha
