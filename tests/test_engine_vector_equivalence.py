"""Scalar-vs-vector byte-identity: the vector fast path's contract.

The vector event loop (``engine/vector_run.py``) is only allowed to
exist because every report it produces is byte-identical to the scalar
oracle's.  This module sweeps that contract across scheduler policy,
fault schedules, self-healing (degradation / health breakers), and
seeds — hypothesis picks the corners — and additionally pins that
eligible configurations *genuinely* execute on the vector path
(``last_mode == "vector"``) rather than passing trivially through a
fallback.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.engine.engine import InferenceEngine
from repro.engine.kv_cache import KVCacheConfig, PagedKVCache
from repro.engine.server import ServingSimulator
from repro.experiments.resilience import chaos_schedule, degradation_policy
from repro.fleet import FleetGateway, build_fleet, poisson_stream
from repro.models.registry import get_model

MODEL = "dsr1-qwen-1.5b"


def _serving_json(mode, *, policy="fcfs", seed=0, qps=10.0, requests=80,
                  deadline_s=None, max_batch_size=8, max_span_steps=None,
                  faults=False, degradation=False, kv_mb=None):
    model = get_model(MODEL)
    kwargs = {}
    if faults:
        kwargs["faults"] = chaos_schedule(seed=seed)
    if degradation:
        kwargs["degradation"] = degradation_policy(deadline_s or 10.0)
    if kv_mb is not None:
        kwargs["kv_cache"] = PagedKVCache(KVCacheConfig(
            bytes_per_token=model.kv_bytes_per_token,
            capacity_bytes=kv_mb * 1e6))
    simulator = ServingSimulator(
        InferenceEngine(model), max_batch_size=max_batch_size,
        policy=policy, max_span_steps=max_span_steps, mode=mode, **kwargs)
    report = simulator.run_poisson(
        np.random.default_rng(seed), qps=qps, num_requests=requests,
        deadline_s=deadline_s)
    return report.to_json(), simulator.last_mode


class TestServingEquivalence:
    """ServingSimulator: scalar and auto modes agree byte-for-byte."""

    @settings(max_examples=12, deadline=None)
    @given(policy=st.sampled_from(["fcfs", "edf"]),
           seed=st.integers(min_value=0, max_value=2**16),
           faults=st.booleans(),
           degradation=st.booleans())
    def test_policy_x_faults_x_healing_x_seed(self, policy, seed, faults,
                                              degradation):
        deadline = 8.0 if policy == "edf" or degradation else None
        scalar, _ = _serving_json("scalar", policy=policy, seed=seed,
                                  deadline_s=deadline, faults=faults,
                                  degradation=degradation, requests=60)
        auto, last = _serving_json("auto", policy=policy, seed=seed,
                                   deadline_s=deadline, faults=faults,
                                   degradation=degradation, requests=60)
        assert scalar == auto
        # Fault-free, degradation-free runs must actually exercise the
        # fast path; anything stateful must stay on the oracle.
        expected = "scalar" if (faults or degradation) else "vector"
        assert last == expected

    @pytest.mark.parametrize("span", [None, 1, 7])
    def test_span_configs_stay_identical(self, span):
        scalar, _ = _serving_json("scalar", max_span_steps=span, seed=3)
        auto, last = _serving_json("auto", max_span_steps=span, seed=3)
        assert scalar == auto
        assert last == "vector"

    def test_overloaded_stream_stays_identical(self):
        scalar, _ = _serving_json("scalar", qps=50.0, requests=120,
                                  deadline_s=5.0, max_batch_size=4, seed=2)
        auto, last = _serving_json("auto", qps=50.0, requests=120,
                                   deadline_s=5.0, max_batch_size=4, seed=2)
        assert scalar == auto
        assert last == "vector"

    def test_kv_pressure_falls_back_and_matches(self):
        """A tight paged cache trips VectorFallback, not divergence."""
        scalar, _ = _serving_json("scalar", qps=20.0, requests=80, kv_mb=8,
                                  seed=7)
        auto, last = _serving_json("auto", qps=20.0, requests=80, kv_mb=8,
                                   seed=7)
        assert scalar == auto
        assert last == "scalar"

    def test_vector_mode_rejects_ineligible_config(self):
        with pytest.raises(ValueError, match="vector"):
            _serving_json("vector", faults=True)

    def test_vector_mode_runs_eligible_config(self):
        forced, last = _serving_json("vector", seed=5)
        scalar, _ = _serving_json("scalar", seed=5)
        assert forced == scalar
        assert last == "vector"


def _fleet_json(mode, *, policy="round-robin", seed=0, qps=4.0,
                requests=120, deadline_s=None, max_batch_size=8,
                faults_seed=None):
    from repro.faults.injector import FleetFaultConfig, FleetFaultSchedule

    fleet = build_fleet(4, mix="balanced", max_batch_size=max_batch_size)
    schedule = None
    if faults_seed is not None:
        schedule = FleetFaultSchedule(
            [device.name for device in fleet],
            FleetFaultConfig(horizon_s=8.0, device_crashes=1,
                             crash_duration_s=(4.0, 8.0)),
            seed=faults_seed)
    gateway = FleetGateway(fleet, policy=policy, faults=schedule, mode=mode)
    stream = poisson_stream(np.random.default_rng(seed), qps, requests,
                            deadline_s=deadline_s)
    return gateway.run(stream).to_json(), gateway.last_mode


class TestFleetEquivalence:
    """FleetGateway: merged-partition vector drain equals the scalar loop."""

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**16))
    def test_paced_round_robin_runs_vector(self, seed):
        scalar, _ = _fleet_json("scalar", seed=seed)
        auto, last = _fleet_json("auto", seed=seed)
        assert scalar == auto
        assert last == "vector"

    @pytest.mark.parametrize("seed", [31, 116, 65535])
    def test_admission_crossing_event_horizon_seeds(self, seed):
        """Regression: an admission prefill crossing a gateway event
        horizon must not let the scalar loop start a decode epoch
        before the next arrival is injected — these seeds diverged
        from the batch oracle (and the vector drain) before the
        ``run_until`` horizon re-check landed."""
        scalar, _ = _fleet_json("scalar", seed=seed)
        auto, last = _fleet_json("auto", seed=seed)
        assert scalar == auto
        assert last == "vector"

    def test_overload_trips_breaker_spike_fallback(self):
        """Latencies past the spike threshold belong to the oracle."""
        scalar, _ = _fleet_json("scalar", qps=40.0, requests=400,
                                deadline_s=8.0, seed=3)
        auto, last = _fleet_json("auto", qps=40.0, requests=400,
                                 deadline_s=8.0, seed=3)
        assert scalar == auto
        assert last == "scalar"

    def test_fault_schedule_stays_identical(self):
        scalar, _ = _fleet_json("scalar", faults_seed=7, deadline_s=30.0)
        auto, last = _fleet_json("auto", faults_seed=7, deadline_s=30.0)
        assert scalar == auto
        assert last == "scalar"

    def test_single_stream_devices_run_vector(self):
        scalar, _ = _fleet_json("scalar", max_batch_size=1, qps=0.8,
                                requests=80, seed=11)
        auto, last = _fleet_json("auto", max_batch_size=1, qps=0.8,
                                 requests=80, seed=11)
        assert scalar == auto
        assert last == "vector"

    def test_vector_mode_rejects_non_round_robin(self):
        with pytest.raises(ValueError, match="vector"):
            _fleet_json("vector", policy="latency-aware")


class TestAcceptanceWorkloads:
    """The perf-harness workload shapes named in the acceptance gate."""

    def test_fleet_fixed_qps_shape(self):
        """4 devices, latency-aware, qps 8 — the fleet_fixed_qps bench."""
        scalar, _ = _fleet_json("scalar", policy="latency-aware", qps=8.0,
                                requests=64, deadline_s=30.0, seed=7)
        auto, _ = _fleet_json("auto", policy="latency-aware", qps=8.0,
                              requests=64, deadline_s=30.0, seed=7)
        assert scalar == auto

    def test_fleet_overload_shape(self):
        """The fleet_overload bench run, auto vs scalar."""
        from repro.experiments.resilience import _overload_run

        args = (4, 3.2, 70, 15, 96, 128, 20.0, 3, 0)
        auto = _overload_run(*args, mode="auto")[0]
        scalar = _overload_run(*args, mode="scalar")[0]
        assert auto.to_json() == scalar.to_json()
