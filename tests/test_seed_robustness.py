"""Seed robustness: the paper's qualitative findings must not depend on
the synthetic benchmark's random draw."""

import pytest

from repro.evaluation.evaluator import Evaluator
from repro.generation.control import (
    base_control,
    direct_control,
    hard_budget,
    nr_control,
)
from repro.models.registry import get_model
from repro.workloads.mmlu_redux import mmlu_redux

SEEDS = (0, 7, 42)


@pytest.fixture(scope="module", params=SEEDS)
def evaluator(request):
    return Evaluator(mmlu_redux(seed=request.param, size=600),
                     seed=request.param)


class TestOrderingsAcrossSeeds:
    def test_model_size_accuracy_ordering(self, evaluator):
        accuracies = [
            evaluator.evaluate(get_model(name), base_control()).accuracy
            for name in ("dsr1-qwen-1.5b", "dsr1-llama-8b", "dsr1-qwen-14b")
        ]
        assert accuracies == sorted(accuracies)

    def test_model_size_latency_ordering(self, evaluator):
        latencies = [
            evaluator.evaluate(get_model(name),
                               base_control()).mean_latency_seconds
            for name in ("dsr1-qwen-1.5b", "dsr1-llama-8b", "dsr1-qwen-14b")
        ]
        assert latencies == sorted(latencies)

    def test_hard_budget_ordering(self, evaluator):
        model = get_model("dsr1-qwen-14b")
        accuracies = [evaluator.evaluate(model, hard_budget(b)).accuracy
                      for b in (128, 256)]
        assert accuracies[0] < accuracies[1]

    def test_takeaway8_direct_wins_low_budget(self, evaluator):
        direct = evaluator.evaluate(get_model("llama3.1-8b-it"),
                                    direct_control())
        constrained = evaluator.evaluate(get_model("dsr1-llama-8b"),
                                         hard_budget(128))
        assert direct.accuracy > constrained.accuracy

    def test_nr_beats_base_only_on_smallest(self, evaluator):
        small_nr = evaluator.evaluate(get_model("dsr1-qwen-1.5b"),
                                      nr_control())
        small_base = evaluator.evaluate(get_model("dsr1-qwen-1.5b"),
                                        base_control())
        big_nr = evaluator.evaluate(get_model("dsr1-qwen-14b"), nr_control())
        big_base = evaluator.evaluate(get_model("dsr1-qwen-14b"),
                                      base_control())
        assert small_nr.accuracy > small_base.accuracy
        assert big_nr.accuracy < big_base.accuracy

    def test_quantization_speedup_holds(self, evaluator):
        fp16 = evaluator.evaluate(get_model("dsr1-qwen-14b"), base_control())
        awq = evaluator.evaluate(get_model("dsr1-qwen-14b-awq-w4"),
                                 base_control())
        assert fp16.mean_latency_seconds > 1.8 * awq.mean_latency_seconds
        assert abs(fp16.accuracy - awq.accuracy) < 0.05
