"""Tests for the roofline kernel-timing engine."""

import numpy as np
import pytest

from repro.hardware.calibration import calibration_for_model
from repro.hardware.kernels import KernelEngine, pad_array_to_tile, pad_to_tile
from repro.hardware.memory import MemorySpec, MemorySystem
from repro.hardware.soc import h100_like_server


class TestTilePadding:
    @pytest.mark.parametrize("n,expected", [
        (1, 128), (127, 128), (128, 128), (129, 256), (256, 256), (300, 384),
    ])
    def test_pad_to_128(self, n, expected):
        assert pad_to_tile(n) == expected

    def test_pad_zero(self):
        assert pad_to_tile(0) == 0

    def test_pad_custom_tile(self):
        assert pad_to_tile(17, 16) == 32

    def test_pad_array(self):
        result = pad_array_to_tile(np.array([1, 16, 17, 0]), 16)
        assert list(result) == [16, 16, 32, 0]


class TestPrefill:
    def test_paper_tbt_8b_prefill_at_128(self, kernels_8b):
        engine, profile = kernels_8b
        # Table XVI: 8B GPU prefill at I=128 is ~0.148 s.
        assert engine.prefill(profile, 128).seconds == pytest.approx(0.148, rel=0.10)

    def test_stepped_pattern_within_tile(self, kernels_8b):
        engine, profile = kernels_8b
        # Within one 128-token tile, compute terms are constant; latency
        # differences come only from (small) activation traffic.
        low = engine.prefill(profile, 129).seconds
        high = engine.prefill(profile, 256).seconds
        next_tile = engine.prefill(profile, 257).seconds
        assert high - low < next_tile - high

    def test_monotone_across_tiles(self, kernels_8b):
        engine, profile = kernels_8b
        seconds = [engine.prefill(profile, n).seconds
                   for n in (128, 512, 1024, 2048, 4096)]
        assert seconds == sorted(seconds)

    def test_quadratic_growth_at_long_inputs(self, kernels_8b):
        engine, profile = kernels_8b
        # Attention's quadratic term makes 4096 cost far more than
        # 4x the 1024 latency minus constants.
        t1k = engine.prefill(profile, 1024).seconds
        t4k = engine.prefill(profile, 4096).seconds
        assert t4k > 3.0 * t1k

    def test_rejects_non_positive(self, kernels_8b):
        engine, profile = kernels_8b
        with pytest.raises(ValueError):
            engine.prefill(profile, 0)
        with pytest.raises(ValueError):
            engine.prefill(profile, 128, batch=0)

    def test_jitter_deterministic(self, kernels_8b):
        engine, profile = kernels_8b
        assert (engine.prefill(profile, 333).seconds
                == engine.prefill(profile, 333).seconds)

    def test_vector_matches_scalar_structure(self, kernels_8b):
        engine, profile = kernels_8b
        lens = np.array([128, 512, 1024])
        vector = engine.prefill_seconds_vector(profile, lens)
        scalars = np.array([engine.prefill(profile, int(n)).seconds for n in lens])
        # Vector path omits the deterministic jitter; within its amplitude.
        assert np.allclose(vector, scalars, rtol=0.05)

    def test_utilization_fields_bounded(self, kernels_8b):
        engine, profile = kernels_8b
        stats = engine.prefill(profile, 1024)
        assert 0 <= stats.compute_utilization <= 1
        assert 0 <= stats.bandwidth_utilization <= 1


class TestDecode:
    def test_tbt_matches_paper_8b(self, kernels_8b):
        engine, profile = kernels_8b
        # Fig. 3b / Table V: 8B TBT ~0.092 s.
        assert engine.mean_tbt(profile, 512) == pytest.approx(0.092, rel=0.05)

    def test_tbt_linear_in_context(self, kernels_8b):
        engine, profile = kernels_8b
        t = engine.decode_step_seconds(profile, np.array([100.0, 1100.0, 2100.0]))
        assert t[1] - t[0] == pytest.approx(t[2] - t[1], rel=1e-6)

    def test_context_slope_matches_paper_m(self, kernels_8b):
        engine, profile = kernels_8b
        # Table V: m = 6.92e-7 for the 8B model.
        assert engine.decode_context_slope(profile) == pytest.approx(6.92e-7,
                                                                     rel=0.05)

    def test_decode_total_is_step_sum(self, kernels_8b):
        engine, profile = kernels_8b
        steps = engine.decode_step_times(profile, 512, 64)
        total = engine.decode(profile, 512, 64)
        assert total.seconds == pytest.approx(float(steps.sum()))

    def test_decode_latency_grows_with_output(self, kernels_8b):
        engine, profile = kernels_8b
        t64 = engine.decode(profile, 512, 64).seconds
        t128 = engine.decode(profile, 512, 128).seconds
        assert t128 > t64 * 1.9

    def test_batch_shares_weight_stream(self, kernels_8b):
        engine, profile = kernels_8b
        single = float(engine.decode_step_seconds(profile, 512, 1))
        batched = float(engine.decode_step_seconds(profile, 512, 8))
        # Eight sequences cost much less than eight single streams.
        assert batched < 8 * single
        assert batched > single

    def test_fig10a_latency_doubles_by_sf64(self, kernels_8b):
        engine, profile = kernels_8b
        single = float(engine.decode_step_seconds(profile, 512, 1))
        sf64 = float(engine.decode_step_seconds(profile, 512, 64))
        assert 1.5 < sf64 / single < 2.6

    def test_compute_bound_at_huge_batch(self, kernels_8b):
        engine, profile = kernels_8b
        # At very large batch the tile-padded GEMM term dominates and the
        # per-sequence roofline cost stops falling.
        per_seq_256 = float(engine.decode_step_seconds(profile, 512, 256)) / 256
        per_seq_1024 = float(engine.decode_step_seconds(profile, 512, 1024)) / 1024
        assert per_seq_1024 == pytest.approx(per_seq_256, rel=0.5)

    def test_rejects_bad_batch(self, kernels_8b):
        engine, profile = kernels_8b
        with pytest.raises(ValueError):
            engine.decode_step_seconds(profile, 512, 0)

    def test_rejects_bad_output_len(self, kernels_8b):
        engine, profile = kernels_8b
        with pytest.raises(ValueError):
            engine.decode(profile, 512, 0)

    def test_bandwidth_utilization_high_during_decode(self, kernels_8b):
        engine, profile = kernels_8b
        util = engine.decode_bandwidth_utilization(profile, 512, 1)
        # Decode is memory-bound: most of peak bandwidth is consumed.
        assert util > 0.5


class TestMachineScaling:
    def test_server_decodes_faster(self, model_8b):
        profile = model_8b.execution_profile()
        calib = calibration_for_model(profile.calibration_key)
        server = h100_like_server()
        mem = MemorySystem(MemorySpec(server.dram_bandwidth, server.l2_cache))
        engine = KernelEngine(server, mem, calib)
        assert engine.mean_tbt(profile, 512) < 0.02

    def test_int8_path_uses_int8_peak(self, orin, memory, model_8b):
        from dataclasses import replace
        profile = model_8b.execution_profile()
        calib = calibration_for_model(profile.calibration_key)
        engine = KernelEngine(orin, memory, calib)
        int8_profile = replace(profile, compute_dtype="int8")
        fp16_prefill = engine.prefill(profile, 2048).seconds
        int8_prefill = engine.prefill(int8_profile, 2048).seconds
        assert int8_prefill < fp16_prefill
