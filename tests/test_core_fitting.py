"""Tests for model fitting: known coefficients must be recovered."""

import numpy as np
import pytest

from repro.core.energy_model import PiecewiseEnergyPerTokenModel
from repro.core.fitting import (
    fit_decode_latency,
    fit_energy_per_token,
    fit_log_energy,
    fit_piecewise_log_power,
    fit_prefill_latency,
)
from repro.core.latency_model import DecodeLatencyModel, PrefillLatencyModel
from repro.core.power_model import PiecewiseLogPowerModel


class TestPrefillFit:
    def test_recovers_synthetic_coefficients(self):
        truth = PrefillLatencyModel(a=6.65e-7, b=2.9e-4, c=0.104)
        lens = np.arange(64, 4097, 64, dtype=float)
        fitted, quality = fit_prefill_latency(lens, np.asarray(truth(lens)))
        assert fitted.a == pytest.approx(truth.a, rel=1e-6)
        assert fitted.b == pytest.approx(truth.b, rel=1e-6)
        assert fitted.c == pytest.approx(truth.c, rel=1e-6)
        assert quality.r_squared > 0.999

    def test_non_multiples_of_64_ignored(self):
        truth = PrefillLatencyModel(a=1e-6, b=1e-4, c=0.05)
        lens = np.concatenate([np.arange(64, 2049, 64, dtype=float),
                               np.array([100.0, 300.0])])
        values = np.asarray(truth(lens))
        values[-2:] += 100.0  # corrupt the off-grid points
        fitted, _ = fit_prefill_latency(lens, values)
        assert fitted.c == pytest.approx(truth.c, rel=1e-6)

    def test_robust_to_noise(self, rng):
        truth = PrefillLatencyModel(a=6.65e-7, b=2.9e-4, c=0.104)
        lens = np.arange(64, 4097, 64, dtype=float)
        noisy = np.asarray(truth(lens)) * rng.normal(1.0, 0.02, lens.size)
        fitted, _ = fit_prefill_latency(lens, noisy)
        assert fitted.a == pytest.approx(truth.a, rel=0.15)

    def test_too_few_points_rejected(self):
        with pytest.raises(ValueError):
            fit_prefill_latency(np.array([64.0, 128.0]), np.array([1.0, 2.0]))

    def test_misaligned_rejected(self):
        with pytest.raises(ValueError):
            fit_prefill_latency(np.zeros(3), np.zeros(4))


class TestDecodeFit:
    def test_recovers_synthetic_coefficients(self, rng):
        truth = DecodeLatencyModel(m=6.92e-7, n=0.092)
        inputs = rng.integers(32, 2000, 100).astype(float)
        outputs = rng.integers(32, 2000, 100).astype(float)
        fitted, quality = fit_decode_latency(
            inputs, outputs, np.asarray(truth(inputs, outputs)))
        assert fitted.m == pytest.approx(truth.m, rel=1e-6)
        assert fitted.n == pytest.approx(truth.n, rel=1e-6)
        assert quality.r_squared > 0.999

    def test_small_m_near_zero_for_gqa_models(self, rng):
        truth = DecodeLatencyModel(m=0.0, n=0.024)
        inputs = rng.integers(32, 2000, 50).astype(float)
        outputs = rng.integers(32, 2000, 50).astype(float)
        fitted, _ = fit_decode_latency(
            inputs, outputs, np.asarray(truth(inputs, outputs)))
        assert abs(fitted.m) < 1e-9

    def test_too_few_points(self):
        with pytest.raises(ValueError):
            fit_decode_latency(np.array([1.0]), np.array([1.0]), np.array([1.0]))


class TestPowerFit:
    def test_recovers_piecewise_log(self):
        truth = PiecewiseLogPowerModel(u=5.9, v=500, w=8.8, x0=-30.0)
        lens = np.arange(64, 4097, 64, dtype=float)
        fitted, _ = fit_piecewise_log_power(lens, np.asarray(truth(lens)))
        assert fitted.w == pytest.approx(truth.w, rel=0.05)

    def test_constant_data_yields_constant_model(self):
        lens = np.arange(64, 2048, 64, dtype=float)
        fitted, quality = fit_piecewise_log_power(lens, np.full(lens.size, 5.6))
        assert np.allclose(np.asarray(fitted(lens)), 5.6)
        assert quality.rmse == pytest.approx(0.0, abs=1e-9)

    def test_explicit_threshold_respected(self):
        truth = PiecewiseLogPowerModel(u=6.0, v=800, w=3.0, x0=-10.0)
        lens = np.arange(64, 4097, 64, dtype=float)
        fitted, _ = fit_piecewise_log_power(lens, np.asarray(truth(lens)),
                                            threshold=800)
        assert fitted.v == 800

    def test_too_few_points(self):
        with pytest.raises(ValueError):
            fit_piecewise_log_power(np.array([1.0, 2.0]), np.array([1.0, 2.0]))


class TestEnergyFit:
    def test_recovers_exp_decay(self):
        truth = PiecewiseEnergyPerTokenModel(
            amplitude=0.159, decay=0.0324, offset=0.0055,
            threshold=640, log_slope=0.0123, log_intercept=-0.0735,
        )
        lens = np.arange(16, 4097, 32, dtype=float)
        fitted, quality = fit_energy_per_token(lens, np.asarray(truth(lens)))
        grid = np.geomspace(16, 4096, 50)
        assert np.allclose(np.asarray(fitted(grid)), np.asarray(truth(grid)),
                           rtol=0.15, atol=5e-3)

    def test_log_energy_fit(self):
        lens = np.array([64, 128, 256, 512, 1024, 2048], dtype=float)
        truth = 0.555 * np.log(lens) + 0.324
        fitted, quality = fit_log_energy(lens, truth)
        assert fitted.alpha == pytest.approx(0.555, rel=1e-6)
        assert fitted.beta == pytest.approx(0.324, rel=1e-4)
        assert quality.r_squared > 0.999

    def test_too_few_points(self):
        with pytest.raises(ValueError):
            fit_energy_per_token(np.arange(3, dtype=float) + 1,
                                 np.ones(3))
