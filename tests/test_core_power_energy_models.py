"""Tests for the analytical power and energy model forms."""

import numpy as np
import pytest

from repro.core.energy_model import (
    LogEnergyPerTokenModel,
    PiecewiseEnergyPerTokenModel,
    TotalEnergyModel,
    exp_decay_energy,
)
from repro.core.power_model import (
    DECODE_PLATEAU_TOKENS,
    DECODE_PLATEAU_W,
    PiecewiseLogPowerModel,
    constant_power,
)


class TestPiecewiseLogPower:
    def test_constant_below_threshold(self):
        model = PiecewiseLogPowerModel(u=5.9, v=64, w=8.8, x0=-30.0)
        assert model(10) == model(64) == 5.9

    def test_log_above_threshold(self):
        model = PiecewiseLogPowerModel(u=5.9, v=64, w=8.8, x0=-30.0)
        assert model(512) == pytest.approx(8.8 * np.log(512) - 30.0)

    def test_vectorized(self):
        model = PiecewiseLogPowerModel(u=5.9, v=64, w=8.8, x0=-30.0)
        out = model(np.array([10.0, 1000.0]))
        assert out.shape == (2,)

    def test_rejects_non_positive_lengths(self):
        model = constant_power(5.0)
        with pytest.raises(ValueError):
            model(0)

    def test_constant_model_flag(self):
        assert constant_power(5.6).is_constant
        assert not PiecewiseLogPowerModel(5.9, 64, 8.8, -30.0).is_constant

    def test_paper_plateau_constants(self):
        assert DECODE_PLATEAU_W == 5.9
        assert DECODE_PLATEAU_TOKENS == 64


class TestPiecewiseEnergy:
    @pytest.fixture()
    def table20_8b(self):
        # Table XX, 8B row.
        return PiecewiseEnergyPerTokenModel(
            amplitude=0.15871, decay=0.03240, offset=0.00553,
            threshold=640, log_slope=0.01233, log_intercept=-0.07349,
        )

    def test_decays_at_short_lengths(self, table20_8b):
        assert table20_8b(16) > table20_8b(300)

    def test_log_regime_beyond_threshold(self, table20_8b):
        assert table20_8b(4096) > table20_8b(700)

    def test_never_negative(self, table20_8b):
        grid = np.geomspace(1, 8192, 100)
        assert (np.asarray(table20_8b(grid)) >= 0).all()

    def test_total_energy_scales_with_tokens(self, table20_8b):
        assert table20_8b.total_energy(1000) > table20_8b.total_energy(100)

    def test_pure_exp_decay_constructor(self):
        model = exp_decay_energy(0.073, 0.032, 0.0009)
        assert model(50) > model(5000)
        assert model(5000) == pytest.approx(0.0009, rel=0.01)

    def test_rejects_non_positive(self, table20_8b):
        with pytest.raises(ValueError):
            table20_8b(0)


class TestLogEnergy:
    def test_log_shape(self):
        model = LogEnergyPerTokenModel(alpha=0.555, beta=0.324)
        assert model(1024) > model(128)

    def test_floor_prevents_negative(self):
        model = LogEnergyPerTokenModel(alpha=1.0, beta=-10.0)
        assert model(1) == 0.0

    def test_total_energy(self):
        model = LogEnergyPerTokenModel(alpha=0.0, beta=2.0)
        assert float(model.total_energy(100)) == pytest.approx(200.0)


class TestTotalEnergy:
    def test_composition(self):
        total = TotalEnergyModel(
            exp_decay_energy(0.1, 0.01, 0.01),
            LogEnergyPerTokenModel(alpha=0.5, beta=0.3),
        )
        value = float(total(512, 512))
        assert value == pytest.approx(
            float(total.prefill.total_energy(512))
            + float(total.decode.total_energy(512)))

    def test_decode_dominates_for_reasoning_shapes(self):
        total = TotalEnergyModel(
            exp_decay_energy(0.1, 0.01, 0.01),
            LogEnergyPerTokenModel(alpha=0.5, beta=0.3),
        )
        prefill = float(total.prefill.total_energy(150))
        decode = float(total.decode.total_energy(800))
        assert decode > 10 * prefill
