"""Property-based tests (hypothesis) on core invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.latency_model import (
    DecodeLatencyModel,
    PrefillLatencyModel,
    TotalLatencyModel,
    pad_input_length,
)
from repro.engine.kv_cache import KVCacheConfig, PagedKVCache
from repro.hardware.kernels import pad_to_tile
from repro.hardware.telemetry import TelemetryRecorder
from repro.models.capability import question_success_probability
from repro.scaling.voting import sample_answer_matrix, majority_vote


class TestPaddingProperties:
    @given(st.integers(min_value=1, max_value=100_000))
    def test_pad_is_multiple_and_minimal(self, n):
        padded = pad_to_tile(n)
        assert padded % 128 == 0
        assert padded >= n
        assert padded - n < 128

    @given(st.integers(min_value=1, max_value=100_000),
           st.integers(min_value=1, max_value=512))
    def test_pad_idempotent(self, n, tile):
        once = pad_to_tile(n, tile)
        assert pad_to_tile(once, tile) == once

    @given(st.integers(min_value=1, max_value=100_000))
    def test_model_padding_agrees_with_kernel_padding(self, n):
        assert pad_input_length(n) == pad_to_tile(n)


class TestLatencyModelProperties:
    @given(st.integers(min_value=1, max_value=4096),
           st.integers(min_value=1, max_value=4096),
           st.integers(min_value=1, max_value=512))
    def test_decode_latency_monotone_in_output(self, input_len, output_len,
                                               extra):
        model = DecodeLatencyModel(m=6.92e-7, n=0.092)
        assert model(input_len, output_len + extra) > model(input_len,
                                                            output_len)

    @given(st.integers(min_value=1, max_value=4096),
           st.integers(min_value=1, max_value=4096),
           st.integers(min_value=1, max_value=2048))
    def test_decode_latency_monotone_in_input(self, input_len, output_len,
                                              extra):
        model = DecodeLatencyModel(m=6.92e-7, n=0.092)
        assert model(input_len + extra, output_len) >= model(input_len,
                                                             output_len)

    @given(st.integers(min_value=1, max_value=4096),
           st.floats(min_value=0.5, max_value=600.0))
    def test_max_output_tokens_inverse(self, input_len, budget):
        model = TotalLatencyModel(
            PrefillLatencyModel(a=6.65e-7, b=2.9e-4, c=0.104),
            DecodeLatencyModel(m=6.92e-7, n=0.092),
        )
        tokens = model.max_output_tokens(input_len, budget)
        if tokens > 0:
            assert float(model(input_len, tokens)) <= budget + 1e-9
            assert float(model(input_len, tokens + 1)) > budget

    @given(st.integers(min_value=1, max_value=8192))
    def test_prefill_latency_positive(self, input_len):
        model = PrefillLatencyModel(a=6.65e-7, b=2.9e-4, c=0.104)
        assert float(model(input_len)) > 0


class TestKVCacheProperties:
    @given(st.lists(st.tuples(st.integers(min_value=1, max_value=500),
                              st.integers(min_value=0, max_value=500)),
                    min_size=1, max_size=20))
    def test_alloc_free_roundtrip_conserves_blocks(self, sequences):
        cache = PagedKVCache(KVCacheConfig(
            bytes_per_token=100.0, capacity_bytes=100.0 * 16 * 100_000,
        ))
        total = cache.free_blocks
        for seq_id, (prompt, extra) in enumerate(sequences):
            cache.allocate_sequence(seq_id, prompt)
            cache.extend(seq_id, extra)
        for seq_id in range(len(sequences)):
            cache.release_sequence(seq_id)
        assert cache.free_blocks == total

    @given(st.integers(min_value=1, max_value=10_000))
    def test_blocks_cover_tokens(self, tokens):
        cache = PagedKVCache(KVCacheConfig(
            bytes_per_token=100.0, capacity_bytes=1e12,
        ))
        blocks = cache.blocks_for(tokens)
        assert blocks * cache.config.block_tokens >= tokens
        assert (blocks - 1) * cache.config.block_tokens < tokens


class TestTelemetryProperties:
    @given(st.lists(st.tuples(st.floats(min_value=1e-4, max_value=10.0),
                              st.floats(min_value=1.0, max_value=60.0)),
                    min_size=1, max_size=50))
    def test_energy_bounded_by_power_envelope(self, steps):
        recorder = TelemetryRecorder()
        seconds = np.array([s for s, _ in steps])
        watts = np.array([w for _, w in steps])
        record = recorder.record_phase("decode", seconds, watts, tokens=1)
        assert record.energy_joules <= float(seconds.sum()) * watts.max() + 1e-9
        assert record.energy_joules >= float(seconds.sum()) * watts.min() - 1e-9


class TestProbabilityProperties:
    @given(st.floats(min_value=0.05, max_value=0.95),
           st.floats(min_value=0.0, max_value=6.0),
           st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_mean_preservation(self, target, beta, seed):
        rng = np.random.default_rng(seed)
        difficulties = rng.beta(2.0, 2.0, size=3000)
        p = question_success_probability(target, difficulties, beta)
        assert (p >= 0).all() and (p <= 1).all()
        assert abs(float(p.mean()) - target) < 0.02


class TestVotingProperties:
    @given(st.integers(min_value=0, max_value=2**31 - 1),
           st.integers(min_value=1, max_value=33))
    @settings(max_examples=25, deadline=None)
    def test_vote_winner_always_among_answers(self, seed, k):
        rng = np.random.default_rng(seed)
        p = rng.random(50)
        w = rng.random(50) * 0.9
        answers = sample_answer_matrix(p, w, 4, k, rng)
        winners = majority_vote(answers, rng)
        for row, winner in zip(answers, winners):
            assert winner in row

    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_answer_matrix_correct_rate_tracks_p(self, seed):
        rng = np.random.default_rng(seed)
        p = np.full(400, rng.random())
        answers = sample_answer_matrix(p, np.full(400, 0.4), 4, 16, rng)
        rate = float((answers == 0).mean())
        assert abs(rate - p[0]) < 0.08
