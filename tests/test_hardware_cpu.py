"""Tests for the ARM CPU execution model (Appendix C)."""

import numpy as np
import pytest

from repro.hardware.cpu import ArmCpuCluster, cortex_a78ae_cluster


@pytest.fixture()
def cpu():
    return ArmCpuCluster()


class TestSpec:
    def test_twelve_cores(self):
        assert cortex_a78ae_cluster().cores == 12

    def test_effective_prefill_throughput(self):
        # Calibrated to ~45 GFLOPS (Table XVI).
        spec = cortex_a78ae_cluster()
        assert spec.peak_flops * spec.compute_efficiency == pytest.approx(45e9)

    def test_effective_stream_bandwidth(self):
        # Calibrated to ~33 GB/s (Table XVII).
        spec = cortex_a78ae_cluster()
        assert spec.memory_bandwidth * spec.bandwidth_efficiency == pytest.approx(33e9)


class TestPrefill:
    def test_table16_8b_at_128(self, cpu, model_8b):
        # Table XVI: 8B CPU prefill at I=128 is ~46.5 s.
        seconds = cpu.prefill_seconds(model_8b.execution_profile(), 128)
        assert seconds == pytest.approx(46.5, rel=0.15)

    def test_roughly_linear_in_input(self, cpu, model_8b):
        profile = model_8b.execution_profile()
        t128 = cpu.prefill_seconds(profile, 128)
        t1024 = cpu.prefill_seconds(profile, 1024)
        assert t1024 == pytest.approx(8 * t128, rel=0.15)

    def test_rejects_bad_input(self, cpu, model_8b):
        with pytest.raises(ValueError):
            cpu.prefill_seconds(model_8b.execution_profile(), 0)


class TestDecode:
    def test_table17_8b_tbt(self, cpu, model_8b):
        # Table XVII implies ~0.5 s/token for the 8B model on the CPU.
        tbt = float(cpu.decode_step_seconds(model_8b.execution_profile(), 512))
        assert tbt == pytest.approx(0.5, rel=0.2)

    def test_decode_seconds_sums_steps(self, cpu, model_8b):
        profile = model_8b.execution_profile()
        total = cpu.decode_seconds(profile, 512, 16)
        steps = cpu.decode_step_seconds(profile, 512 + np.arange(16))
        assert total == pytest.approx(float(steps.sum()))

    def test_gpu_speedup_near_5x(self, cpu, engine_8b, model_8b):
        # Appendix C: CPU decode is ~5x slower than the GPU.
        profile = model_8b.execution_profile()
        cpu_seconds = cpu.decode_seconds(profile, 512, 128)
        gpu_seconds = engine_8b.kernels.decode(profile, 512, 128).seconds
        assert 3.5 < cpu_seconds / gpu_seconds < 7.0

    def test_energy_uses_active_power(self, cpu, model_8b):
        profile = model_8b.execution_profile()
        energy = cpu.decode_energy_joules(profile, 512, 16)
        seconds = cpu.decode_seconds(profile, 512, 16)
        assert energy == pytest.approx(seconds * cpu.spec.active_power_w)

    def test_rejects_bad_output(self, cpu, model_8b):
        with pytest.raises(ValueError):
            cpu.decode_seconds(model_8b.execution_profile(), 512, 0)
