"""Tests for the perf-regression harness behind ``repro perf``."""

from __future__ import annotations

import json

import pytest

from repro.perf.harness import (
    BENCH_FILES,
    WORKLOAD_CATALOG,
    BenchResult,
    compare_to_baseline,
    list_workloads,
    load_baseline,
    run_benchmarks,
    write_bench_files,
)


def _result(name="serving_fixed_qps", group="engine", value=1.0,
            unit="s", meta=None):
    return BenchResult(name=name, group=group, value=value,
                       repeats=(value,), unit=unit, meta=meta or {})


class TestBenchFiles:
    def test_round_trip(self, tmp_path):
        results = [
            _result("pipeline_cold_smoke", "pipeline", 2.5),
            _result("serving_fixed_qps", "engine", 0.03),
            _result("serving_span_speedup", "engine", 12.0, unit="x",
                    meta={"min": 3.0}),
        ]
        written = write_bench_files(results, tmp_path)
        assert set(written) == {"pipeline", "engine"}
        merged = load_baseline(tmp_path)
        assert merged["pipeline_cold_smoke"]["value"] == 2.5
        assert merged["serving_span_speedup"]["unit"] == "x"
        assert merged["serving_span_speedup"]["meta"]["min"] == 3.0

    def test_filtered_run_keeps_other_group_file(self, tmp_path):
        # A pipeline-only rerun must not clobber BENCH_engine.json.
        write_bench_files([_result("serving_fixed_qps", "engine", 0.03)],
                          tmp_path)
        write_bench_files([_result("pipeline_cold_smoke", "pipeline", 2.0)],
                          tmp_path)
        assert (tmp_path / BENCH_FILES["engine"]).is_file()
        assert (tmp_path / BENCH_FILES["pipeline"]).is_file()

    def test_payload_schema(self, tmp_path):
        write_bench_files([_result()], tmp_path)
        payload = json.loads((tmp_path / BENCH_FILES["engine"]).read_text())
        assert payload["schema"] == 1
        assert "python" in payload["environment"]
        assert "serving_fixed_qps" in payload["workloads"]


class TestBaselineGate:
    def test_passes_within_threshold(self, tmp_path):
        write_bench_files([_result(value=1.0)], tmp_path)
        assert compare_to_baseline([_result(value=1.2)], tmp_path,
                                   threshold=0.25) == []

    def test_fails_beyond_threshold(self, tmp_path):
        write_bench_files([_result(value=1.0)], tmp_path)
        problems = compare_to_baseline([_result(value=1.5)], tmp_path,
                                       threshold=0.25)
        assert len(problems) == 1
        assert "serving_fixed_qps" in problems[0]

    def test_micro_workload_jitter_tolerated(self, tmp_path):
        # Sub-millisecond workloads get absolute slack on top of the
        # fractional threshold, so scheduler noise cannot flap the gate.
        write_bench_files([_result(value=0.0009)], tmp_path)
        assert compare_to_baseline([_result(value=0.003)], tmp_path) == []

    def test_missing_baseline_passes(self, tmp_path):
        assert compare_to_baseline([_result(value=99.0)], tmp_path) == []

    def test_ratio_floor_from_result_meta(self, tmp_path):
        ratio = _result("serving_span_speedup", value=2.0, unit="x",
                        meta={"min": 3.0})
        problems = compare_to_baseline([ratio], tmp_path)
        assert len(problems) == 1
        assert "floor" in problems[0]

    def test_ratio_floor_takes_max_with_baseline(self, tmp_path):
        write_bench_files([_result("serving_span_speedup", value=12.0,
                                   unit="x", meta={"min": 5.0})], tmp_path)
        current = _result("serving_span_speedup", value=4.0, unit="x",
                          meta={"min": 3.0})
        problems = compare_to_baseline([current], tmp_path)
        assert len(problems) == 1
        assert "5.00x floor" in problems[0]

    def test_ratio_above_floor_passes(self, tmp_path):
        ratio = _result("serving_span_speedup", value=10.0, unit="x",
                        meta={"min": 3.0})
        assert compare_to_baseline([ratio], tmp_path) == []


class TestRunBenchmarks:
    def test_only_filter_runs_one_workload(self):
        lines = []
        results = run_benchmarks(repeats=1, only=("evaluator_mmlu_redux",),
                                 log=lines.append)
        assert [r.name for r in results] == ["evaluator_mmlu_redux"]
        assert results[0].value > 0
        assert len(lines) == 1

    def test_unknown_workload_rejected(self):
        # A typo'd --only must not pass the CI gate vacuously.
        with pytest.raises(ValueError, match="unknown perf workload"):
            run_benchmarks(repeats=1, only=("nonsense",))

    def test_serving_speedup_meets_floor(self):
        results = run_benchmarks(repeats=1, only=("serving_span_speedup",))
        (ratio,) = results
        assert ratio.unit == "x"
        # The perf_opt acceptance gate: span pricing >= 3x per-token.
        assert ratio.value >= ratio.meta["min"] == 3.0

    def test_fleet_vector_speedup_meets_floor(self):
        # Two repeats: the bench takes best-of, so one scheduler stall
        # inside the short vector window cannot flap the gate.
        results = run_benchmarks(repeats=2, only=("fleet_vector_speedup",))
        (ratio,) = results
        assert ratio.unit == "x"
        assert ratio.group == "fleet100k"
        # The vectorized event-loop acceptance gate: >= 10x scalar.
        assert ratio.value >= ratio.meta["min"] == 10.0


class TestWorkloadCatalog:
    def test_catalog_groups_have_bench_files(self):
        for _, group, _ in WORKLOAD_CATALOG:
            assert group in BENCH_FILES

    def test_list_workloads_matches_dispatch(self):
        names = [name for name, _, _ in list_workloads()]
        assert names == sorted(set(names), key=names.index)
        assert "fleet_100k" in names
        assert "fleet_vector_speedup" in names
        # The unknown-name error advertises exactly this set.
        with pytest.raises(ValueError) as err:
            run_benchmarks(repeats=1, only=("bogus",))
        for name in names:
            assert name in str(err.value)


class TestBudgetGate:
    def test_budget_blown_fails_without_baseline(self, tmp_path):
        over = _result("fleet_100k", "fleet100k", 99.0,
                       meta={"budget_s": 30.0})
        problems = compare_to_baseline([over], tmp_path)
        assert problems and "budget" in problems[0]

    def test_budget_respected_passes(self, tmp_path):
        under = _result("fleet_100k", "fleet100k", 6.0,
                        meta={"budget_s": 30.0})
        assert compare_to_baseline([under], tmp_path) == []
