"""Tests for the Section VI optimization extensions."""

import pytest

from repro.engine.engine import InferenceEngine
from repro.extensions.heterogeneous import (
    cpu_offload_speedup,
    dla_offload_speedup,
    dla_offload_sweep,
)
from repro.extensions.prefetch import (
    prefetch_decode_report,
    prefetch_prefill_report,
    prefetch_sweep,
)
from repro.extensions.speculative import (
    SpeculativeConfig,
    best_gamma,
    gamma_sweep,
    simulate_speculative_decoding,
)
from repro.models.registry import get_model


@pytest.fixture(scope="module")
def target():
    return InferenceEngine(get_model("dsr1-llama-8b"))


@pytest.fixture(scope="module")
def draft():
    return InferenceEngine(get_model("dsr1-qwen-1.5b"))


class TestSpeculativeDecoding:
    def test_expected_tokens_formula(self):
        config = SpeculativeConfig(gamma=4, acceptance_rate=0.75)
        expected = (1 - 0.75 ** 5) / (1 - 0.75)
        assert config.expected_tokens_per_pass == pytest.approx(expected)

    def test_speedup_in_plausible_band(self, target, draft):
        report = simulate_speculative_decoding(target, draft)
        assert 1.2 < report.speedup < 2.5

    def test_effective_tbt_below_baseline(self, target, draft):
        report = simulate_speculative_decoding(target, draft)
        assert report.effective_tbt_s < report.baseline_tbt_s

    def test_low_acceptance_kills_the_win(self, target, draft):
        bad = simulate_speculative_decoding(
            target, draft, SpeculativeConfig(gamma=4, acceptance_rate=0.15))
        good = simulate_speculative_decoding(
            target, draft, SpeculativeConfig(gamma=4, acceptance_rate=0.85))
        assert bad.speedup < good.speedup
        assert bad.speedup < 1.0  # drafting overhead dominates

    def test_self_drafting_never_helps(self, target):
        # Using the target as its own draft can't beat 1x meaningfully.
        report = simulate_speculative_decoding(target, target)
        assert report.speedup < 1.05

    def test_gamma_sweep_and_best(self, target, draft):
        reports = gamma_sweep(target, draft)
        best = best_gamma(target, draft)
        assert best.speedup == max(r.speedup for r in reports)

    def test_bigger_target_bigger_win(self, draft):
        # Speculation pays more when the target is more expensive.
        target_14b = InferenceEngine(get_model("dsr1-qwen-14b"))
        target_8b = InferenceEngine(get_model("dsr1-llama-8b"))
        assert (best_gamma(target_14b, draft).speedup
                > best_gamma(target_8b, draft).speedup)

    @pytest.mark.parametrize("kwargs", [
        dict(gamma=0), dict(acceptance_rate=0.0), dict(acceptance_rate=1.0),
    ])
    def test_config_validation(self, kwargs):
        with pytest.raises(ValueError):
            SpeculativeConfig(**kwargs)


class TestCpuOffload:
    def test_modest_but_real_speedup(self, target):
        plan = cpu_offload_speedup(target)
        assert 1.01 < plan.speedup < 1.25

    def test_offloadable_fraction_small(self, target):
        # Lightweight kernels are a minor share of a memory-bound step.
        plan = cpu_offload_speedup(target)
        assert plan.offloadable_fraction < 0.25

    def test_batching_grows_offloadable_share(self, target):
        single = cpu_offload_speedup(target, batch=1)
        batched = cpu_offload_speedup(target, batch=32)
        assert batched.offloadable_s > single.offloadable_s


class TestDlaOffload:
    def test_useless_when_bandwidth_bound(self, target):
        # The paper's observation made quantitative: decode at batch 1 is
        # bandwidth-bound, so the DLA cannot help.
        plan = dla_offload_speedup(target, batch=1)
        assert plan.speedup == pytest.approx(1.0, abs=0.02)

    def test_helps_when_compute_bound(self, target):
        plan = dla_offload_speedup(target, batch=512)
        assert plan.speedup > 1.05

    def test_sweep_monotone_tail(self, target):
        plans = dla_offload_sweep(target, batches=(1, 64, 512))
        speedups = [p.speedup for p in plans]
        assert speedups[-1] >= speedups[0]

    def test_never_slower(self, target):
        for plan in dla_offload_sweep(target):
            assert plan.speedup >= 1.0

    def test_bad_share_rejected(self, target):
        with pytest.raises(ValueError):
            dla_offload_speedup(target, batch=1, ffn_share=0.0)


class TestPrefetch:
    def test_prefill_benefits(self, target):
        report = prefetch_prefill_report(target, 1024)
        assert report.speedup > 1.03

    def test_decode_does_not(self, target):
        # Takeaway #2's flip side: nothing to hide the stream behind.
        report = prefetch_decode_report(target)
        assert report.speedup == pytest.approx(1.0, abs=0.05)

    def test_prefill_gain_fades_at_long_inputs(self, target):
        # At long inputs compute dominates even the un-overlapped stream,
        # so the relative win shrinks.
        reports = {r.seq_len: r for r in prefetch_sweep(
            target, input_lens=(512, 4096))}
        assert reports[512].speedup >= reports[4096].speedup

    def test_never_slower(self, target):
        for report in prefetch_sweep(target):
            assert report.speedup >= 1.0

    def test_rejects_bad_input(self, target):
        with pytest.raises(ValueError):
            prefetch_prefill_report(target, 0)
