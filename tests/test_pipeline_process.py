"""Process-based pipeline execution: fidelity, faults, and guard rails.

``run_pipeline(jobs=N, executor="process")`` warms the shared producers
in worker processes that coordinate exclusively through the
sha256-checksummed disk tier, then assembles artifacts serially in the
parent.  These tests pin the contract: byte-identical outputs versus
the serial path, worker fault/retry statistics merged into the parent
report, the chaos + crash/resume study passing end to end, and clear
errors for unpicklable work or an unknown executor.
"""

from __future__ import annotations

import pickle
from pathlib import Path

import pytest

from repro.experiments.runner import render
from repro.faults.injector import FaultInjector, PipelineFaultConfig
from repro.pipeline.runner import run_pipeline
from repro.pipeline.store import ArtifactStore

#: A small artifact family sharing one expensive producer — enough DAG
#: to prove exactly-once warming without a full-registry sweep.
ARTIFACTS = ("fig6", "fig7", "table10")

#: Seed whose hash draws make ``tradeoff_grid`` fail attempts 1-2 and
#: corrupt the ``power_mode_points`` cache entry (found by scanning;
#: pinned so the regression test always exercises real recovery).
CHAOS_SEED = 14


class TestProcessExecutor:
    def test_byte_identical_to_serial(self):
        serial = run_pipeline(ARTIFACTS, seed=0, smoke=True)
        parallel = run_pipeline(ARTIFACTS, seed=0, smoke=True, jobs=2,
                                executor="process")
        for artifact in ARTIFACTS:
            assert pickle.dumps(parallel.outputs[artifact]) == \
                pickle.dumps(serial.outputs[artifact])
            assert render(parallel.outputs[artifact]) == \
                render(serial.outputs[artifact])

    def test_worker_faults_merge_into_parent_stats(self, tmp_path):
        faults = FaultInjector(seed=CHAOS_SEED,
                               pipeline=PipelineFaultConfig(
                                   producer_fail_rate=0.3,
                                   producer_fail_attempts=2,
                                   cache_corrupt_rate=0.0))
        store = ArtifactStore(cache_dir=tmp_path, faults=faults)
        result = run_pipeline(ARTIFACTS, seed=0, smoke=True, jobs=2,
                              executor="process", store=store,
                              faults=faults, retries=3,
                              backoff_base_s=0.01)
        stats = result.report.supervisor_stats
        assert stats.injected_faults >= 2
        assert stats.retries >= 2
        assert stats.recovered >= 1
        assert not result.report.failed

    def test_serial_jobs_ignore_executor(self):
        # jobs=1 short-circuits to the sequential path for any executor.
        result = run_pipeline(("fig6",), seed=0, smoke=True, jobs=1,
                              executor="process")
        assert "fig6" in result.outputs

    def test_unknown_executor_rejected(self):
        with pytest.raises(ValueError, match="executor"):
            run_pipeline(("fig6",), seed=0, smoke=True, jobs=2,
                         executor="greenlet")

    def test_unpicklable_faults_fail_fast(self):
        faults = FaultInjector(seed=0, pipeline=PipelineFaultConfig(
            producer_fail_rate=0.0))
        faults.hook = lambda: None  # closures cannot cross the pipe
        with pytest.raises(TypeError, match="picklable"):
            run_pipeline(("fig6",), seed=0, smoke=True, jobs=2,
                         executor="process", faults=faults)


class TestChaosUnderProcessExecutor:
    def test_subset_chaos_study_recovers(self, tmp_path):
        from repro.experiments.resilience import (
            PIPELINE_CHAOS_ARTIFACTS,
            run_pipeline_chaos_study,
        )

        result = run_pipeline_chaos_study(
            PIPELINE_CHAOS_ARTIFACTS, seed=CHAOS_SEED, jobs=2,
            executor="process", cache_dir=Path(tmp_path))
        assert result.injected_faults > 0
        assert result.failed == 0
        assert result.chaos_identical
        assert result.resume_identical
        assert result.recovery_ok
