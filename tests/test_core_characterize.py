"""Tests for characterization: simulate -> fit -> paper coefficients."""

import pytest

from repro.core.characterize import (
    characterize_model,
    run_decode_sweep,
    run_prefill_sweep,
    run_tbt_sweep,
    sample_decode_fit_points,
)
from repro.core.latency_model import (
    PAPER_DECODE_COEFFICIENTS,
    PAPER_PREFILL_COEFFICIENTS,
)


@pytest.fixture(scope="module")
def characterization_8b():
    from repro.models.registry import get_model
    return characterize_model(get_model("dsr1-llama-8b"), power_samples=1)


class TestSweeps:
    def test_prefill_sweep_shapes(self, engine_8b):
        sweep = run_prefill_sweep(engine_8b, input_lens=(64, 128, 256))
        assert sweep.input_lens.shape == (3,)
        assert (sweep.seconds > 0).all()
        assert (sweep.power_w > 0).all()
        assert (sweep.energy_per_token_j > 0).all()

    def test_decode_sweep_monotone_latency(self, engine_8b):
        sweep = run_decode_sweep(engine_8b, output_lens=(64, 256, 1024))
        assert list(sweep.seconds) == sorted(sweep.seconds)

    def test_decode_throughput_stable(self, engine_8b):
        sweep = run_decode_sweep(engine_8b, output_lens=(128, 1024))
        tps = sweep.tokens_per_second
        assert tps[0] == pytest.approx(tps[1], rel=0.15)

    def test_tbt_sweep_slight_rise_with_context(self, engine_8b):
        # Fig. 3b: only ~3% TBT increase from context 1 to 4k.
        sweep = run_tbt_sweep(engine_8b, input_lens=(1, 4096))
        increase = sweep.tbt_seconds[1] / sweep.tbt_seconds[0] - 1.0
        assert 0.0 < increase < 0.10

    def test_fit_points_in_benchmark_range(self, engine_8b, rng):
        inputs, outputs, latencies = sample_decode_fit_points(engine_8b, rng, 50)
        assert inputs.min() >= 32
        assert outputs.max() <= 4096
        assert (latencies > 0).all()


class TestFittedCoefficients:
    """The simulate->fit loop must land near the paper's Tables IV/V."""

    def test_prefill_a_matches_paper(self, characterization_8b):
        paper = PAPER_PREFILL_COEFFICIENTS["dsr1-llama-8b"]
        assert characterization_8b.latency.prefill.a == pytest.approx(
            paper.a, rel=0.15)

    def test_prefill_b_matches_paper(self, characterization_8b):
        paper = PAPER_PREFILL_COEFFICIENTS["dsr1-llama-8b"]
        assert characterization_8b.latency.prefill.b == pytest.approx(
            paper.b, rel=0.30)

    def test_prefill_c_matches_paper(self, characterization_8b):
        paper = PAPER_PREFILL_COEFFICIENTS["dsr1-llama-8b"]
        assert characterization_8b.latency.prefill.c == pytest.approx(
            paper.c, rel=0.30)

    def test_decode_m_matches_paper(self, characterization_8b):
        paper = PAPER_DECODE_COEFFICIENTS["dsr1-llama-8b"]
        assert characterization_8b.latency.decode.m == pytest.approx(
            paper.m, rel=0.10)

    def test_decode_n_matches_paper(self, characterization_8b):
        paper = PAPER_DECODE_COEFFICIENTS["dsr1-llama-8b"]
        assert characterization_8b.latency.decode.n == pytest.approx(
            paper.n, rel=0.05)

    def test_fit_quality_reported(self, characterization_8b):
        assert characterization_8b.prefill_fit.r_squared > 0.95
        assert characterization_8b.decode_fit.r_squared > 0.99

    def test_decode_power_log_slope_positive(self, characterization_8b):
        assert characterization_8b.decode_power.w > 0

    def test_energy_model_composes(self, characterization_8b):
        energy = characterization_8b.energy
        total = float(energy(512, 512))
        assert total > 0
        assert total == pytest.approx(
            float(energy.prefill.total_energy(512))
            + float(energy.decode.total_energy(512)))
