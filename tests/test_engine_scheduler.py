"""Tests for the batch scheduler and sampler helpers."""

import numpy as np
import pytest

from repro.engine.kv_cache import KVCacheConfig, PagedKVCache
from repro.engine.request import GenerationRequest
from repro.engine.sampler import SamplingParams, active_sequences_per_step
from repro.engine.scheduler import BatchScheduler


def _request(request_id, n=1, prompt=50, natural=100):
    return GenerationRequest(request_id, prompt, natural, n=n)


class TestBatchScheduler:
    def test_single_request_single_batch(self):
        scheduler = BatchScheduler(max_batch_size=4)
        scheduler.submit(_request(0))
        batch = scheduler.next_batch()
        assert batch.num_sequences == 1
        assert scheduler.next_batch() is None

    def test_packs_up_to_cap(self):
        scheduler = BatchScheduler(max_batch_size=3)
        scheduler.submit_all([_request(i) for i in range(5)])
        batches = scheduler.drain()
        assert [b.num_sequences for b in batches] == [3, 2]

    def test_preserves_order(self):
        scheduler = BatchScheduler(max_batch_size=2)
        scheduler.submit_all([_request(i) for i in range(4)])
        batches = scheduler.drain()
        ids = [r.request_id for b in batches for r in b.requests]
        assert ids == [0, 1, 2, 3]

    def test_oversize_request_runs_alone(self):
        scheduler = BatchScheduler(max_batch_size=2)
        scheduler.submit(_request(0, n=8))
        batch = scheduler.next_batch()
        assert batch.num_sequences == 8

    def test_multi_sample_requests_counted(self):
        scheduler = BatchScheduler(max_batch_size=4)
        scheduler.submit_all([_request(0, n=3), _request(1, n=3)])
        batches = scheduler.drain()
        assert [b.num_sequences for b in batches] == [3, 3]

    def test_kv_cache_limits_batch(self):
        # Cache fits exactly one 150-token sequence at a time.
        cache = PagedKVCache(KVCacheConfig(
            bytes_per_token=1000.0, capacity_bytes=160 * 1000.0,
        ))
        scheduler = BatchScheduler(max_batch_size=8, kv_cache=cache)
        scheduler.submit_all([_request(i) for i in range(3)])
        batches = scheduler.drain()
        assert [b.num_sequences for b in batches] == [1, 1, 1]

    def test_pending_count(self):
        scheduler = BatchScheduler(max_batch_size=1)
        scheduler.submit_all([_request(i) for i in range(3)])
        assert scheduler.pending == 3
        scheduler.next_batch()
        assert scheduler.pending == 2

    def test_invalid_cap(self):
        with pytest.raises(ValueError):
            BatchScheduler(max_batch_size=0)


class TestSamplingParams:
    def test_defaults_valid(self):
        params = SamplingParams()
        assert params.n == 1

    @pytest.mark.parametrize("kwargs", [
        dict(temperature=-1.0),
        dict(top_p=0.0),
        dict(top_p=1.5),
        dict(max_tokens=0),
        dict(n=0),
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            SamplingParams(**kwargs)


class TestActiveSequences:
    def test_uniform_stops(self):
        active = active_sequences_per_step(np.array([4, 4, 4]), 4)
        assert list(active) == [3, 3, 3, 3]

    def test_staggered_stops(self):
        active = active_sequences_per_step(np.array([1, 2, 4]), 4)
        assert list(active) == [3, 2, 1, 1]

    def test_zero_steps(self):
        assert active_sequences_per_step(np.array([1]), 0).size == 0

    def test_batch_drains_to_zero_beyond_last_stop(self):
        active = active_sequences_per_step(np.array([2]), 3)
        assert list(active) == [1, 1, 0]
