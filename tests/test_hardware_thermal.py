"""Tests for the RC thermal state machine."""

import math

import pytest

from repro.hardware.thermal import ThermalConfig, ThermalModel, ThermalState


def _hot() -> ThermalConfig:
    """A config that trips quickly under tens-of-watts draw."""
    return ThermalConfig(
        ambient_c=35.0,
        heat_capacity_j_per_c=10.0,
        conductance_w_per_c=0.5,
        throttle_trip_c=60.0,
        resume_c=50.0,
        throttle_derate=0.6,
        throttle_power_scale=0.7,
    )


class TestThermalConfig:
    def test_equilibrium(self):
        config = _hot()
        # Steady state: T_eq = ambient + P/G.
        assert config.equilibrium_c(25.0) == pytest.approx(35.0 + 25.0 / 0.5)

    def test_zero_power_equilibrium_is_ambient(self):
        assert _hot().equilibrium_c(0.0) == pytest.approx(35.0)

    @pytest.mark.parametrize("field,value", [
        ("heat_capacity_j_per_c", 0.0),
        ("conductance_w_per_c", -1.0),
        ("throttle_derate", 0.0),
        ("throttle_derate", 1.5),
        ("throttle_power_scale", 0.0),
    ])
    def test_bad_values_rejected(self, field, value):
        import dataclasses
        with pytest.raises(ValueError):
            dataclasses.replace(_hot(), **{field: value})

    def test_resume_must_be_below_trip(self):
        import dataclasses
        with pytest.raises(ValueError):
            dataclasses.replace(_hot(), resume_c=60.0)


class TestThermalModel:
    def test_starts_nominal_at_ambient(self):
        model = ThermalModel(_hot())
        assert model.state is ThermalState.NOMINAL
        assert model.temperature_c == pytest.approx(35.0)
        assert model.speed_factor() == 1.0
        assert model.power_scale() == 1.0

    def test_exact_rc_step(self):
        config = _hot()
        model = ThermalModel(config)
        model.advance(2.0, 30.0)
        tau = config.heat_capacity_j_per_c / config.conductance_w_per_c
        t_eq = config.equilibrium_c(30.0)
        expected = t_eq + (35.0 - t_eq) * math.exp(-2.0 / tau)
        assert model.temperature_c == pytest.approx(expected)

    def test_one_big_step_equals_many_small(self):
        a = ThermalModel(_hot())
        b = ThermalModel(_hot())
        a.advance(10.0, 20.0)
        for _ in range(1000):
            b.advance(0.01, 20.0)
        assert a.temperature_c == pytest.approx(b.temperature_c, rel=1e-9)

    def test_converges_to_equilibrium(self):
        config = _hot()
        model = ThermalModel(config)
        model.advance(1e6, 8.0)
        assert model.temperature_c == pytest.approx(
            config.equilibrium_c(8.0), abs=1e-6)

    def test_trips_then_resumes_with_hysteresis(self):
        model = ThermalModel(_hot())
        # 30 W equilibrium is 95C: well above the 60C trip point.
        while model.state is ThermalState.NOMINAL:
            model.advance(0.5, 30.0)
        assert model.throttled
        assert model.speed_factor() == pytest.approx(0.6)
        assert model.power_scale() == pytest.approx(0.7)
        assert model.throttle_events == 1
        # Must cool past resume_c (50C), not just below trip (60C).
        while model.temperature_c > 55.0:
            model.advance(0.5, 0.0)
        assert model.throttled            # still inside the hysteresis band
        while model.state is ThermalState.THROTTLED:
            model.advance(0.5, 0.0)
        assert model.temperature_c <= 50.0 + 1e-9
        assert model.speed_factor() == 1.0

    def test_residency_accumulates_only_while_throttled(self):
        model = ThermalModel(_hot())
        model.advance(1.0, 0.0)
        assert model.throttle_residency_s == 0.0
        while model.state is ThermalState.NOMINAL:
            model.advance(0.5, 30.0)
        base = model.throttle_residency_s
        model.advance(2.0, 30.0)
        assert model.throttle_residency_s == pytest.approx(base + 2.0)

    def test_negative_power_clamped(self):
        model = ThermalModel(_hot())
        model.advance(100.0, -5.0)
        assert model.temperature_c >= 35.0 - 1e-9

    def test_zero_dt_is_noop(self):
        model = ThermalModel(_hot())
        model.advance(0.0, 50.0)
        assert model.temperature_c == pytest.approx(35.0)

    def test_reset(self):
        model = ThermalModel(_hot())
        while model.state is ThermalState.NOMINAL:
            model.advance(0.5, 30.0)
        model.reset()
        assert model.state is ThermalState.NOMINAL
        assert model.temperature_c == pytest.approx(35.0)
        assert model.throttle_residency_s == 0.0
        assert model.throttle_events == 0

    def test_default_config_never_throttles_at_modest_power(self):
        # The stock Orin-class config has equilibrium below trip at ~20 W.
        model = ThermalModel()
        model.advance(1e6, 20.0)
        assert model.state is ThermalState.NOMINAL
