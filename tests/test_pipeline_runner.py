"""Registry surface, exactly-once producers, and parallel determinism."""

import inspect

import pytest

from repro.experiments.runner import (
    list_experiments,
    render,
    run_all,
    run_all_timed,
    run_experiment,
)
from repro.pipeline.graph import ArtifactSpec, DependencyGraph, ProducerSpec
from repro.pipeline.registry import ARTIFACTS, PRODUCERS, default_graph
from repro.pipeline.runner import run_pipeline, validate_artifact_kwargs
from repro.pipeline.store import ArtifactStore

# Artifacts sharing the tradeoff grid plus cheap independent ones —
# small enough to rebuild twice for the jobs=1 vs jobs=4 comparison.
SUBSET = ("fig6", "fig7", "fig8", "table10", "table11",
          "table9", "table16", "optimizations", "power-modes")


@pytest.fixture(scope="module")
def full_run():
    """One smoke-tier run of every artifact through the parallel pipeline."""
    store = ArtifactStore()
    outputs, report = run_all_timed(seed=0, jobs=4, smoke=True, store=store)
    return outputs, report, store


class TestRegistrySurface:
    def test_every_experiment_runs_and_renders(self, full_run):
        outputs, _, _ = full_run
        assert tuple(outputs) == list_experiments()
        for artifact_id, output in outputs.items():
            text = render(output)
            assert isinstance(text, str) and text.strip(), artifact_id

    def test_shared_producers_computed_exactly_once(self, full_run):
        _, report, _ = full_run
        misses = report.store_stats.misses_by_producer
        hits = report.store_stats.hits_by_producer
        assert misses["characterizations"] == 1
        assert misses["tradeoff_grid"] == 1
        assert misses["quantized_characterizations"] == 1
        # The whole point of the shared store: many artifacts reuse them.
        assert hits["characterizations"] >= 5
        assert hits["tradeoff_grid"] >= 3

    def test_report_covers_every_artifact(self, full_run):
        _, report, _ = full_run
        assert tuple(t.artifact for t in report.timings) == list_experiments()
        assert report.wall_seconds > 0
        assert all(t.seconds >= 0 for t in report.timings)
        kinds = {record["kind"] for record in report.to_records()}
        assert kinds == {"artifact", "producer", "run"}

    def test_run_experiment_matches_run_all(self, full_run):
        outputs, _, _ = full_run
        solo = run_experiment("table9", seed=0, smoke=True)
        assert render(solo) == render(outputs["table9"])


class TestDeterminism:
    def test_jobs_do_not_change_rendered_output(self):
        serial = run_pipeline(SUBSET, seed=0, jobs=1, smoke=True)
        threaded = run_pipeline(SUBSET, seed=0, jobs=4, smoke=True)
        assert tuple(serial.outputs) == tuple(threaded.outputs) == SUBSET
        for artifact_id in SUBSET:
            assert (render(serial.outputs[artifact_id])
                    == render(threaded.outputs[artifact_id])), artifact_id

    def test_parallel_run_still_computes_shared_producer_once(self):
        store = ArtifactStore()
        run_pipeline(("fig6", "fig7", "fig8", "table10"), seed=0, jobs=4,
                     smoke=True, store=store)
        assert store.stats.misses_by_producer["tradeoff_grid"] == 1
        assert store.stats.hits_by_producer["tradeoff_grid"] == 3


class TestKwargValidation:
    def test_bogus_kwarg_fails_fast_naming_the_artifact(self):
        store = ArtifactStore()
        with pytest.raises(TypeError, match=r"artifact '.*' .* does not "
                                            r"accept keyword 'bogus_kwarg'"):
            run_all(seed=0, store=store, bogus_kwarg=1)
        # Validation happens before any experiment runs.
        assert store.stats.misses == 0

    def test_every_registered_callable_accepts_seed(self):
        graph = default_graph()
        for spec in (*graph.artifacts.values(), *graph.producers.values()):
            parameters = inspect.signature(spec.fn).parameters
            assert "seed" in parameters or any(
                p.kind is inspect.Parameter.VAR_KEYWORD
                for p in parameters.values()
            ), spec.id

    def test_validate_accepts_declared_kwargs(self):
        graph = default_graph()
        validate_artifact_kwargs(graph, ("fig6",), {})

    def test_unknown_artifact_raises_keyerror(self):
        with pytest.raises(KeyError, match="fig99"):
            run_experiment("fig99")


class TestGraph:
    def test_registry_ids_match_facade(self):
        assert tuple(sorted(ARTIFACTS)) == list_experiments()
        graph = default_graph()
        assert set(graph.producers) == set(PRODUCERS)

    def test_producer_closure_topological(self):
        graph = default_graph()
        closure = graph.producer_closure("fig1")
        assert closure == ("characterizations", "planner_frontier")
        both = graph.producer_closure("table18_19")
        assert set(both) == {"characterizations",
                             "quantized_characterizations"}
        assert graph.producer_closure("optimizations") == ()

    def test_cycle_detection(self):
        producers = {
            "a": ProducerSpec("a", lambda seed, x: x, deps={"x": "b"}),
            "b": ProducerSpec("b", lambda seed, x: x, deps={"x": "a"}),
        }
        with pytest.raises(ValueError, match="cycle"):
            DependencyGraph(producers, {})

    def test_unknown_dependency_rejected(self):
        artifacts = {
            "t": ArtifactSpec("t", lambda seed, x: x, deps={"x": "ghost"}),
        }
        with pytest.raises(ValueError, match="ghost"):
            DependencyGraph({}, artifacts)

    def test_smoke_and_full_use_distinct_cache_keys(self):
        sizes = []
        producers = {
            "p": ProducerSpec("p", lambda seed, size: sizes.append(size),
                              params={"size": 1000},
                              smoke_params={"size": 10}),
        }
        graph = DependencyGraph(producers, {})
        store = ArtifactStore()
        graph.resolve_producer("p", store, seed=0, smoke=False)
        graph.resolve_producer("p", store, seed=0, smoke=True)
        assert sizes == [1000, 10]
        assert store.stats.misses == 2

    def test_run_experiment_shares_store_across_calls(self):
        store = ArtifactStore()
        run_experiment("fig6", seed=0, store=store, smoke=True)
        run_experiment("fig7", seed=0, store=store, smoke=True)
        assert store.stats.misses_by_producer["tradeoff_grid"] == 1
        assert store.stats.hits_by_producer["tradeoff_grid"] == 1
