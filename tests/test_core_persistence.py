"""Tests for fitted-model persistence."""

import json

import numpy as np
import pytest

from repro.core.characterize import characterize_model
from repro.core.persistence import (
    SCHEMA_VERSION,
    characterization_to_dict,
    energy_from_dict,
    energy_to_dict,
    latency_from_dict,
    latency_to_dict,
    load_models,
    power_from_dict,
    power_to_dict,
    save_characterization,
)
from repro.core.energy_model import (
    LogEnergyPerTokenModel,
    PiecewiseEnergyPerTokenModel,
    TotalEnergyModel,
)
from repro.core.latency_model import (
    DecodeLatencyModel,
    PrefillLatencyModel,
    TotalLatencyModel,
)
from repro.core.power_model import PiecewiseLogPowerModel, constant_power
from repro.models.registry import get_model


@pytest.fixture(scope="module")
def characterization():
    return characterize_model(get_model("dsr1-qwen-1.5b"), power_samples=1)


class TestRoundTrips:
    def test_latency_round_trip(self):
        model = TotalLatencyModel(
            PrefillLatencyModel(6.65e-7, 2.9e-4, 0.104),
            DecodeLatencyModel(6.92e-7, 0.092),
        )
        rebuilt = latency_from_dict(latency_to_dict(model))
        assert rebuilt == model

    def test_power_round_trip(self):
        model = PiecewiseLogPowerModel(5.9, 64, 8.8, -30.0)
        assert power_from_dict(power_to_dict(model)) == model

    def test_constant_power_infinite_threshold(self):
        model = constant_power(5.6)
        rebuilt = power_from_dict(power_to_dict(model))
        assert rebuilt.v == float("inf")
        assert rebuilt(10**9) == pytest.approx(5.6)

    def test_energy_round_trip(self):
        model = TotalEnergyModel(
            PiecewiseEnergyPerTokenModel(0.159, 0.032, 0.0055, 640,
                                         0.0123, -0.0735),
            LogEnergyPerTokenModel(0.555, 0.324),
        )
        rebuilt = energy_from_dict(energy_to_dict(model))
        assert float(rebuilt(512, 512)) == pytest.approx(float(model(512, 512)))


class TestFiles:
    def test_save_and_load(self, characterization, tmp_path):
        path = save_characterization(characterization, tmp_path / "m.json")
        models = load_models(path)
        assert models["model"] == "dsr1-qwen-1.5b"
        grid_i = np.array([64.0, 512.0, 2048.0])
        assert np.allclose(
            np.asarray(models["latency"].prefill(grid_i)),
            np.asarray(characterization.latency.prefill(grid_i)))

    def test_predictions_survive_round_trip(self, characterization, tmp_path):
        path = save_characterization(characterization, tmp_path / "m.json")
        loaded = load_models(path)["latency"]
        assert float(loaded(150, 800)) == pytest.approx(
            float(characterization.latency(150, 800)))

    def test_schema_version_written(self, characterization, tmp_path):
        path = save_characterization(characterization, tmp_path / "m.json")
        data = json.loads(path.read_text())
        assert data["schema_version"] == SCHEMA_VERSION
        assert "fit_quality" in data

    def test_unknown_schema_rejected(self, characterization, tmp_path):
        path = tmp_path / "bad.json"
        data = characterization_to_dict(characterization)
        data["schema_version"] = 99
        path.write_text(json.dumps(data))
        with pytest.raises(ValueError, match="schema"):
            load_models(path)

    def test_json_is_plain_numbers(self, characterization, tmp_path):
        path = save_characterization(characterization, tmp_path / "m.json")
        # File must be loadable by any JSON consumer.
        json.loads(path.read_text())
