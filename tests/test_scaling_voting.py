"""Tests for majority voting and its scaling behaviour."""

import numpy as np
import pytest

from repro.scaling.voting import (
    asymptotic_voting_accuracy,
    majority_vote,
    sample_answer_matrix,
    voting_accuracy,
)


class TestSampleMatrix:
    def test_shape(self, rng):
        answers = sample_answer_matrix(np.full(10, 0.5), np.full(10, 0.4),
                                       4, 7, rng)
        assert answers.shape == (10, 7)

    def test_p_one_always_correct(self, rng):
        answers = sample_answer_matrix(np.ones(5), np.full(5, 0.4), 4, 8, rng)
        assert (answers == 0).all()

    def test_p_zero_never_correct(self, rng):
        answers = sample_answer_matrix(np.zeros(5), np.full(5, 0.4), 4, 8, rng)
        assert (answers != 0).all()

    def test_free_form_wrong_answers_unique(self, rng):
        answers = sample_answer_matrix(np.zeros(3), np.full(3, 0.4), 0, 16, rng)
        flat = answers.ravel()
        assert len(set(flat.tolist())) == flat.size

    def test_garbage_answers_unique(self, rng):
        answers = sample_answer_matrix(np.zeros(3), np.zeros(3), 4, 16, rng,
                                       garbage_share=np.ones(3))
        flat = answers.ravel()
        assert len(set(flat.tolist())) == flat.size

    def test_full_distractor_concentration(self, rng):
        answers = sample_answer_matrix(np.zeros(3), np.ones(3), 4, 16, rng)
        assert (answers == 1).all()

    def test_determinism_makes_rows_constant(self, rng):
        answers = sample_answer_matrix(np.full(50, 0.5), np.full(50, 0.4),
                                       4, 16, rng, determinism=np.ones(50))
        assert (answers == answers[:, :1]).all()

    def test_answer_ids_within_choices(self, rng):
        answers = sample_answer_matrix(np.full(20, 0.3), np.full(20, 0.3),
                                       4, 32, rng)
        assert answers.max() <= 3

    @pytest.mark.parametrize("bad", [
        dict(p=np.array([1.5]), w=np.array([0.4])),
        dict(p=np.array([0.5]), w=np.array([0.4]), g=np.array([2.0])),
        dict(p=np.array([0.5]), w=np.array([0.4]), det=np.array([-0.1])),
    ])
    def test_validation(self, rng, bad):
        with pytest.raises(ValueError):
            sample_answer_matrix(bad["p"], bad["w"], 4, 4, rng,
                                 garbage_share=bad.get("g", 0.0),
                                 determinism=bad.get("det", 0.0))

    def test_misaligned_shapes(self, rng):
        with pytest.raises(ValueError):
            sample_answer_matrix(np.ones(3), np.ones(2), 4, 4, rng)

    def test_two_choice_suite(self, rng):
        answers = sample_answer_matrix(np.full(10, 0.5), np.full(10, 0.5),
                                       2, 8, rng)
        assert set(np.unique(answers)).issubset({0, 1})


class TestMajorityVote:
    def test_clear_majority(self, rng):
        answers = np.array([[0, 0, 1], [2, 2, 0]])
        winners = majority_vote(answers, rng)
        assert list(winners) == [0, 2]

    def test_tie_broken_randomly(self):
        answers = np.array([[0, 1]] * 400)
        rng = np.random.default_rng(0)
        winners = majority_vote(answers, rng)
        share = (winners == 0).mean()
        assert 0.4 < share < 0.6

    def test_requires_2d(self, rng):
        with pytest.raises(ValueError):
            majority_vote(np.array([0, 1, 2]), rng)


class TestVotingAccuracy:
    def test_k1_equals_mean_p(self, rng):
        p = np.full(4000, 0.37)
        acc = voting_accuracy(p, np.full(4000, 0.4), 4, 1, rng, trials=3)
        assert acc == pytest.approx(0.37, abs=0.03)

    def test_high_p_amplified(self, rng):
        p = np.full(2000, 0.6)
        acc = voting_accuracy(p, np.full(2000, 0.3), 4, 31, rng)
        assert acc > 0.9

    def test_strong_distractor_converges_wrong(self, rng):
        # Paper: voting degrades small models whose modal wrong answer
        # beats their correct-answer probability.
        p = np.full(2000, 0.2)
        w = np.full(2000, 0.9)
        acc_1 = voting_accuracy(p, w, 4, 1, rng, trials=2)
        acc_31 = voting_accuracy(p, w, 4, 31, rng, trials=2)
        assert acc_31 < acc_1

    def test_determinism_blocks_gains(self, rng):
        p = np.full(2000, 0.6)
        acc = voting_accuracy(p, np.full(2000, 0.3), 4, 31, rng,
                              determinism=np.ones(2000))
        assert acc == pytest.approx(0.6, abs=0.04)

    def test_free_form_self_consistency(self, rng):
        # Wrong free-form answers never agree, so any p > 0 wins at large k.
        p = np.full(1000, 0.3)
        acc = voting_accuracy(p, np.zeros(1000), 0, 63, rng)
        assert acc > 0.95

    def test_k_must_be_positive(self, rng):
        with pytest.raises(ValueError):
            voting_accuracy(np.ones(2), np.ones(2), 4, 0, rng)

    def test_accuracy_in_unit_interval(self, rng):
        p = rng.random(200)
        acc = voting_accuracy(p, rng.random(200) * 0.9, 4, 8, rng)
        assert 0.0 <= acc <= 1.0


class TestAsymptote:
    def test_matches_monte_carlo_at_large_k(self, rng):
        p = np.clip(rng.random(1500), 0.02, 0.98)
        w = rng.random(1500) * 0.9
        limit = asymptotic_voting_accuracy(p, w, 4)
        mc = voting_accuracy(p, w, 4, 301, rng)
        assert mc == pytest.approx(limit, abs=0.05)

    def test_free_form_limit(self):
        p = np.array([0.0, 0.1, 0.9])
        assert asymptotic_voting_accuracy(p, np.zeros(3), 0) == pytest.approx(2 / 3)

    def test_determinism_interpolates(self):
        p = np.full(100, 0.4)
        w = np.full(100, 0.1)
        full_det = asymptotic_voting_accuracy(p, w, 4, determinism=1.0)
        no_det = asymptotic_voting_accuracy(p, w, 4, determinism=0.0)
        assert full_det == pytest.approx(0.4)
        assert no_det == pytest.approx(1.0)


class TestInputValidation:
    """Garbage inputs must fail loudly, naming the offending argument."""

    def test_distractor_share_range_rejected(self, rng):
        with pytest.raises(ValueError, match="distractor_share"):
            sample_answer_matrix(np.full(3, 0.5), np.full(3, 1.2), 4, 3, rng)
        with pytest.raises(ValueError, match="distractor_share"):
            sample_answer_matrix(np.full(3, 0.5), np.full(3, -0.1), 4, 3, rng)

    def test_garbage_share_range_rejected(self, rng):
        with pytest.raises(ValueError, match="garbage_share"):
            sample_answer_matrix(np.full(3, 0.5), np.full(3, 0.3), 4, 3, rng,
                                 garbage_share=1.5)

    def test_determinism_range_rejected(self, rng):
        with pytest.raises(ValueError, match="determinism"):
            sample_answer_matrix(np.full(3, 0.5), np.full(3, 0.3), 4, 3, rng,
                                 determinism=-0.5)

    def test_non_positive_k_rejected(self, rng):
        with pytest.raises(ValueError, match="k must be positive"):
            sample_answer_matrix(np.full(3, 0.5), np.full(3, 0.3), 4, 0, rng)
        with pytest.raises(ValueError, match="k must be positive"):
            voting_accuracy(np.full(3, 0.5), np.full(3, 0.3), 4, -2, rng)

    def test_non_positive_trials_rejected(self, rng):
        with pytest.raises(ValueError, match="trials must be positive"):
            voting_accuracy(np.full(3, 0.5), np.full(3, 0.3), 4, 3, rng,
                            trials=0)

    def test_shape_mismatch_names_both_shapes(self, rng):
        with pytest.raises(ValueError, match=r"\(3,\) vs \(2,\)"):
            sample_answer_matrix(np.full(3, 0.5), np.full(2, 0.3), 4, 3, rng)

    def test_broadcast_mismatch_names_argument(self, rng):
        with pytest.raises(ValueError, match="garbage_share"):
            sample_answer_matrix(np.full(3, 0.5), np.full(3, 0.3), 4, 3, rng,
                                 garbage_share=np.full(5, 0.1))
        with pytest.raises(ValueError, match="determinism"):
            sample_answer_matrix(np.full(3, 0.5), np.full(3, 0.3), 4, 3, rng,
                                 determinism=np.full(7, 0.1))

    def test_non_1d_p_rejected(self, rng):
        with pytest.raises(ValueError, match="1-d"):
            sample_answer_matrix(np.full((2, 2), 0.5), np.full((2, 2), 0.3),
                                 4, 3, rng)

    def test_asymptote_validates_too(self):
        with pytest.raises(ValueError, match="p_correct"):
            asymptotic_voting_accuracy(np.full(3, 1.4), np.full(3, 0.3), 4)
        with pytest.raises(ValueError, match="distractor_share"):
            asymptotic_voting_accuracy(np.full(3, 0.5), np.full(3, 2.0), 4)

    def test_negative_num_choices_rejected(self, rng):
        with pytest.raises(ValueError, match="num_choices"):
            sample_answer_matrix(np.full(3, 0.5), np.full(3, 0.3), -1, 3, rng)
