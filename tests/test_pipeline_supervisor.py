"""Supervised execution: retries, watchdog, quarantine, chaos seams."""

import time

import pytest

from repro.experiments.runner import render
from repro.faults.injector import FaultInjector, PipelineFaultConfig
from repro.pipeline.graph import ArtifactSpec, DependencyGraph, ProducerSpec
from repro.pipeline.runner import PipelineError, run_pipeline
from repro.pipeline.store import ArtifactStore
from repro.pipeline.supervisor import (
    InjectedProducerFault,
    ProducerFailure,
    Supervisor,
    SupervisorPolicy,
    WatchdogTimeout,
    exception_digest,
)


def no_sleep(_seconds: float) -> None:
    """Backoff stub so retry tests spend zero wall time."""


def toy_graph() -> DependencyGraph:
    """base -> grid -> {a1, a2}, plus an independent solo artifact."""
    producers = {
        "base": ProducerSpec("base", lambda seed: {"v": 7 + seed}),
        "grid": ProducerSpec(
            "grid", lambda seed, base: [base["v"] * i for i in range(4)],
            deps={"base": "base"}),
    }
    artifacts = {
        "a1": ArtifactSpec("a1", lambda seed, grid: f"a1:{grid}",
                           deps={"grid": "grid"}),
        "a2": ArtifactSpec("a2", lambda seed, grid: f"a2:{sum(grid)}",
                           deps={"grid": "grid"}),
        "solo": ArtifactSpec("solo", lambda seed: f"solo:{seed}"),
    }
    return DependencyGraph(producers, artifacts)


class TestExceptionDigest:
    def test_stable(self):
        a = exception_digest(ValueError("boom"))
        b = exception_digest(ValueError("boom"))
        assert a == b and len(a) == 12

    def test_distinguishes_type_and_message(self):
        base = exception_digest(ValueError("boom"))
        assert exception_digest(ValueError("bang")) != base
        assert exception_digest(RuntimeError("boom")) != base


class TestBackoff:
    def test_seeded_and_deterministic(self):
        a = Supervisor(SupervisorPolicy(retries=3), seed=7)
        b = Supervisor(SupervisorPolicy(retries=3), seed=7)
        assert a.backoff_seconds("p", 1) == b.backoff_seconds("p", 1)
        assert a.backoff_seconds("p", 1) != a.backoff_seconds("q", 1)

    def test_exponential_growth_with_bounded_jitter(self):
        policy = SupervisorPolicy(retries=4, backoff_base_s=0.1,
                                  backoff_factor=2.0, jitter_frac=0.1)
        supervisor = Supervisor(policy, seed=0)
        for attempt, nominal in ((1, 0.1), (2, 0.2), (3, 0.4)):
            delay = supervisor.backoff_seconds("p", attempt)
            assert nominal * 0.9 <= delay <= nominal * 1.1

    def test_zero_jitter_is_exact(self):
        policy = SupervisorPolicy(retries=1, backoff_base_s=0.05,
                                  jitter_frac=0.0)
        assert Supervisor(policy).backoff_seconds("p", 2) == pytest.approx(0.1)

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            SupervisorPolicy(retries=-1)
        with pytest.raises(ValueError):
            SupervisorPolicy(jitter_frac=1.5)
        with pytest.raises(ValueError):
            SupervisorPolicy(timeout_s=0)


class TestRetry:
    def test_flaky_producer_recovers(self):
        supervisor = Supervisor(SupervisorPolicy(retries=3), sleep=no_sleep)
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise ValueError(f"flake {len(calls)}")
            return 42

        assert supervisor.run_producer("p", flaky) == 42
        assert len(calls) == 3
        stats = supervisor.stats
        assert stats.attempts == 3 and stats.retries == 2
        assert stats.recovered == 1
        assert stats.wasted_seconds > 0
        outcomes = [r.outcome for r in supervisor.attempts_for("p")]
        assert outcomes == ["error", "error", "ok"]

    def test_attempt_records_carry_digests(self):
        supervisor = Supervisor(SupervisorPolicy(retries=1), sleep=no_sleep)
        with pytest.raises(ProducerFailure):
            supervisor.run_producer(
                "p", lambda: (_ for _ in ()).throw(ValueError("boom")))
        records = supervisor.attempts_for("p")
        assert [r.attempt for r in records] == [1, 2]
        assert all(r.error_type == "ValueError" for r in records)
        assert all(r.error_digest == exception_digest(ValueError("boom"))
                   for r in records)

    def test_exhausted_budget_raises_producer_failure(self):
        supervisor = Supervisor(SupervisorPolicy(retries=2), sleep=no_sleep)

        def always():
            raise RuntimeError("permanent")

        with pytest.raises(ProducerFailure) as excinfo:
            supervisor.run_producer("p", always)
        failure = excinfo.value
        assert failure.producer_id == "p"
        assert len(failure.attempts) == 3
        assert failure.error_type == "RuntimeError"
        assert "3 attempts" in str(failure)


class TestWatchdog:
    def test_hung_producer_times_out(self):
        supervisor = Supervisor(SupervisorPolicy(timeout_s=0.05),
                                sleep=no_sleep)
        with pytest.raises(ProducerFailure) as excinfo:
            supervisor.run_producer("p", lambda: time.sleep(1.0))
        assert excinfo.value.error_type == "WatchdogTimeout"
        stats = supervisor.stats
        assert stats.timeouts == 1
        assert supervisor.attempts_for("p")[0].outcome == "timeout"

    def test_fast_producer_unaffected(self):
        supervisor = Supervisor(SupervisorPolicy(timeout_s=5.0))
        assert supervisor.run_producer("p", lambda: 9) == 9

    def test_worker_exception_propagates_through_watchdog(self):
        supervisor = Supervisor(SupervisorPolicy(timeout_s=5.0))
        with pytest.raises(ProducerFailure) as excinfo:
            supervisor.run_producer(
                "p", lambda: (_ for _ in ()).throw(KeyError("inside")))
        assert excinfo.value.error_type == "KeyError"

    def test_timeout_retried_like_any_failure(self):
        supervisor = Supervisor(
            SupervisorPolicy(retries=1, timeout_s=0.05), sleep=no_sleep)
        calls = []

        def slow_then_fast():
            calls.append(1)
            if len(calls) == 1:
                time.sleep(1.0)
            return "ok"

        assert supervisor.run_producer("p", slow_then_fast) == "ok"
        assert supervisor.stats.timeouts == 1
        assert supervisor.stats.recovered == 1


class TestQuarantine:
    def test_second_request_fails_instantly(self):
        supervisor = Supervisor(SupervisorPolicy(retries=2), sleep=no_sleep)
        calls = []

        def always():
            calls.append(1)
            raise ValueError("permanent")

        with pytest.raises(ProducerFailure) as first:
            supervisor.run_producer("p", always)
        assert len(calls) == 3
        with pytest.raises(ProducerFailure) as second:
            supervisor.run_producer("p", always)
        # Quarantined: the original failure, no new attempts burned.
        assert second.value is first.value
        assert len(calls) == 3
        assert supervisor.stats.failed_producers == ("p",)
        assert supervisor.failure_for("p") is first.value

    def test_dependency_failure_not_retried_by_parent(self):
        supervisor = Supervisor(SupervisorPolicy(retries=3), sleep=no_sleep)
        with pytest.raises(ProducerFailure):
            supervisor.run_producer(
                "dep", lambda: (_ for _ in ()).throw(ValueError("root")))
        parent_calls = []

        def parent():
            parent_calls.append(1)
            # Resolving the dep re-raises its quarantined failure.
            supervisor.run_producer("dep", lambda: 1)

        with pytest.raises(ProducerFailure) as excinfo:
            supervisor.run_producer("parent", parent)
        # Retrying the parent cannot fix its dependency: one attempt only.
        assert len(parent_calls) == 1
        assert excinfo.value.producer_id == "dep"


class TestPipelineFailureHandling:
    def test_keep_going_quarantines_downstream(self):
        graph = toy_graph()
        producers = dict(graph.producers)
        producers["base"] = ProducerSpec(
            "base", lambda seed: (_ for _ in ()).throw(OSError("dead")))
        broken = DependencyGraph(producers, graph.artifacts)

        result = run_pipeline(("a1", "a2", "solo"), graph=broken,
                              keep_going=True, retries=1,
                              backoff_base_s=0.0)
        # The healthy artifact completed; both downstream ones quarantined.
        assert tuple(result.outputs) == ("solo",)
        failed = {f.artifact: f for f in result.report.failed}
        assert set(failed) == {"a1", "a2"}
        for failure in failed.values():
            assert failure.producer == "base"
            assert failure.error_type == "OSError"
        # The root producer burned its budget once, not once per artifact.
        assert len(failed["a1"].attempts) == 2
        assert result.report.supervisor_stats.attempts == 2
        statuses = {t.artifact: t.status for t in result.report.timings}
        assert statuses == {"a1": "failed", "a2": "failed", "solo": "built"}

    def test_artifact_function_failure_recorded_without_producer(self):
        graph = toy_graph()
        artifacts = dict(graph.artifacts)
        artifacts["bad"] = ArtifactSpec(
            "bad", lambda seed, grid: 1 / 0, deps={"grid": "grid"})
        broken = DependencyGraph(graph.producers, artifacts)
        result = run_pipeline(("a1", "bad"), graph=broken, keep_going=True)
        (failure,) = result.report.failed
        assert failure.artifact == "bad" and failure.producer is None
        assert failure.error_type == "ZeroDivisionError"

    def test_fail_fast_raises_pipeline_error_with_partial_report(self):
        graph = toy_graph()
        artifacts = dict(graph.artifacts)
        artifacts["bad"] = ArtifactSpec(
            "bad", lambda seed: (_ for _ in ()).throw(ValueError("nope")))
        broken = DependencyGraph(graph.producers, artifacts)

        with pytest.raises(PipelineError) as excinfo:
            run_pipeline(("a1", "bad", "a2"), graph=broken, jobs=4)
        error = excinfo.value
        assert error.artifact == "bad"
        assert "ValueError" in str(error)
        # The partial report keeps completed work: every future drained.
        timed = {t.artifact: t.status for t in error.report.timings}
        assert timed["bad"] == "failed"
        assert timed["a1"] == "built" and timed["a2"] == "built"

    def test_fail_fast_serial_stops_at_first_failure(self):
        graph = toy_graph()
        artifacts = dict(graph.artifacts)
        artifacts["bad"] = ArtifactSpec(
            "bad", lambda seed: (_ for _ in ()).throw(ValueError("nope")))
        broken = DependencyGraph(graph.producers, artifacts)
        with pytest.raises(PipelineError) as excinfo:
            run_pipeline(("a1", "bad", "a2"), graph=broken, jobs=1)
        timed = [t.artifact for t in excinfo.value.report.timings]
        assert timed == ["a1", "bad"]  # a2 never started


class TestChaosInjection:
    def test_fault_decisions_deterministic_and_transient(self):
        cfg = PipelineFaultConfig(producer_fail_rate=0.5,
                                  producer_fail_attempts=2)
        a = FaultInjector(seed=3, pipeline=cfg)
        b = FaultInjector(seed=3, pipeline=cfg)
        for pid in ("alpha", "beta", "gamma"):
            for attempt in (1, 2, 3):
                assert (a.should_fail_producer(pid, attempt)
                        == b.should_fail_producer(pid, attempt))
            # Transient by construction: late attempts never fail.
            assert not a.should_fail_producer(pid, 3)

    def test_rate_one_always_fires_rate_zero_never(self):
        always = FaultInjector(pipeline=PipelineFaultConfig(
            producer_fail_rate=1.0, cache_corrupt_rate=1.0))
        off = FaultInjector(pipeline=None)
        assert always.should_fail_producer("p", 1)
        assert always.should_corrupt_cache("p")
        assert not off.should_fail_producer("p", 1)
        assert not off.should_corrupt_cache("p")

    def test_injected_faults_recover_with_identical_outputs(self):
        graph = toy_graph()
        clean = run_pipeline(("a1", "a2", "solo"), graph=graph)

        faults = FaultInjector(seed=0, pipeline=PipelineFaultConfig(
            producer_fail_rate=1.0, producer_fail_attempts=2))
        chaos = run_pipeline(("a1", "a2", "solo"), graph=graph,
                             retries=2, backoff_base_s=0.0, faults=faults)
        for artifact in ("a1", "a2", "solo"):
            assert (render(chaos.outputs[artifact])
                    == render(clean.outputs[artifact])), artifact
        sup = chaos.report.supervisor_stats
        # Both producers failed their first two attempts, then recovered.
        assert sup.injected_faults == 4
        assert sup.recovered == 2
        assert not chaos.report.failed

    def test_injected_fault_without_retries_quarantines(self):
        graph = toy_graph()
        faults = FaultInjector(seed=0, pipeline=PipelineFaultConfig(
            producer_fail_rate=1.0))
        result = run_pipeline(("a1", "solo"), graph=graph, keep_going=True,
                              faults=faults)
        (failure,) = result.report.failed
        assert failure.artifact == "a1"
        assert failure.error_type == InjectedProducerFault.__name__

    def test_hang_fault_trips_watchdog_then_recovers(self):
        cfg = PipelineFaultConfig(hang_rate=1.0, hang_seconds=5.0)
        faults = FaultInjector(seed=0, pipeline=cfg)
        supervisor = Supervisor(
            SupervisorPolicy(retries=1, timeout_s=0.05),
            faults=faults, sleep=no_sleep)
        assert supervisor.run_producer("p", lambda: "value") == "value"
        stats = supervisor.stats
        assert stats.timeouts == 1 and stats.recovered == 1

    def test_hang_without_watchdog_just_delays(self):
        cfg = PipelineFaultConfig(hang_rate=1.0, hang_seconds=0.01)
        faults = FaultInjector(seed=0, pipeline=cfg)
        supervisor = Supervisor(SupervisorPolicy(), faults=faults)
        assert supervisor.run_producer("p", lambda: 5) == 5

    def test_watchdog_timeout_exception_type(self):
        supervisor = Supervisor(SupervisorPolicy(timeout_s=0.02),
                                sleep=no_sleep)
        with pytest.raises(ProducerFailure) as excinfo:
            supervisor.run_producer("p", lambda: time.sleep(0.5))
        assert isinstance(excinfo.value.__cause__, WatchdogTimeout)


class TestPipelineChaosStudy:
    def test_small_study_passes_gate_with_real_injection(self, tmp_path):
        from repro.experiments.resilience import (
            PIPELINE_CHAOS_ARTIFACTS,
            pipeline_chaos_table,
            run_pipeline_chaos_study,
        )

        result = run_pipeline_chaos_study(
            artifact_ids=PIPELINE_CHAOS_ARTIFACTS,
            fail_rate=0.9, retries=3, cache_corrupt_rate=1.0,
            crash_after=2, seed=0, smoke=True, jobs=2,
            cache_dir=tmp_path)
        assert result.recovery_ok
        assert result.artifacts == len(PIPELINE_CHAOS_ARTIFACTS)
        assert result.completed == result.artifacts and result.failed == 0
        # The gate must not be vacuous: chaos actually fired.
        assert result.injected_faults > 0
        assert result.disk_corruptions > 0
        assert result.chaos_identical and result.resume_identical
        assert (result.committed_before_crash + result.resume_recomputed
                == result.artifacts)
        text = pipeline_chaos_table(result).to_text()
        assert "injected faults" in text and "recomputed after resume" in text


class TestStoreFaultSeam:
    def test_store_inherits_faults_from_run_pipeline(self, tmp_path):
        graph = toy_graph()
        faults = FaultInjector(seed=0, pipeline=PipelineFaultConfig(
            cache_corrupt_rate=1.0))
        store = ArtifactStore(cache_dir=tmp_path)
        run_pipeline(("solo", "a1"), graph=graph, store=store, faults=faults)
        assert store.faults is faults
        # Every fresh write was garbled; a cold store detects them all.
        cold = ArtifactStore(cache_dir=tmp_path)
        result = run_pipeline(("a1",), graph=graph, store=cold)
        assert cold.stats.disk_corruptions == 2  # base + grid
        assert result.outputs["a1"] == "a1:[0, 7, 14, 21]"
