"""Tests for telemetry recording and energy integration."""

import numpy as np
import pytest

from repro.hardware.telemetry import (
    EnergyReport,
    TelemetryRecorder,
    UtilizationSample,
)


class TestRecordPhase:
    def test_energy_is_power_time_integral(self):
        recorder = TelemetryRecorder()
        seconds = np.array([0.1, 0.2, 0.3])
        watts = np.array([10.0, 20.0, 30.0])
        record = recorder.record_phase("decode", seconds, watts, tokens=3)
        assert record.energy_joules == pytest.approx(0.1 * 10 + 0.2 * 20 + 0.3 * 30)

    def test_mean_power(self):
        recorder = TelemetryRecorder()
        record = recorder.record_phase("decode", np.array([1.0, 1.0]),
                                       np.array([10.0, 30.0]), tokens=2)
        assert record.mean_power_w == pytest.approx(20.0)

    def test_scalar_inputs(self):
        recorder = TelemetryRecorder()
        record = recorder.record_phase("prefill", 0.5, 12.0, tokens=100)
        assert record.energy_joules == pytest.approx(6.0)

    def test_scalar_power_broadcast(self):
        recorder = TelemetryRecorder()
        record = recorder.record_phase("decode", np.array([1.0, 2.0]), 10.0,
                                       tokens=2)
        assert record.energy_joules == pytest.approx(30.0)

    def test_shape_mismatch_raises(self):
        recorder = TelemetryRecorder()
        with pytest.raises(ValueError):
            recorder.record_phase("decode", np.ones(3), np.ones(2), tokens=1)

    def test_utilization_attached(self):
        recorder = TelemetryRecorder()
        util = UtilizationSample(0.5, 0.6, 0.05, 0.15)
        record = recorder.record_phase("decode", 1.0, 10.0, tokens=1,
                                       utilization=util)
        assert record.utilization is util


class TestReport:
    def _recorder_with_phases(self):
        recorder = TelemetryRecorder()
        recorder.record_phase("prefill", 0.1, 10.0, tokens=100)
        recorder.record_phase("decode", np.array([0.5, 0.5]),
                              np.array([20.0, 20.0]), tokens=2)
        return recorder

    def test_totals(self):
        report = self._recorder_with_phases().report()
        assert report.total_seconds == pytest.approx(1.1)
        assert report.total_energy_joules == pytest.approx(1.0 + 20.0)

    def test_phase_split(self):
        report = self._recorder_with_phases().report()
        assert report.prefill_seconds == pytest.approx(0.1)
        assert report.decode_seconds == pytest.approx(1.0)
        assert report.prefill_tokens == 100
        assert report.decode_tokens == 2

    def test_energy_per_token(self):
        report = self._recorder_with_phases().report()
        assert report.energy_per_decode_token == pytest.approx(10.0)
        assert report.energy_per_prefill_token == pytest.approx(0.01)

    def test_mean_power(self):
        report = self._recorder_with_phases().report()
        assert report.mean_power_w == pytest.approx(21.0 / 1.1)

    def test_empty_report_is_zero(self):
        report = EnergyReport()
        assert report.mean_power_w == 0.0
        assert report.energy_per_decode_token == 0.0
        assert report.energy_per_prefill_token == 0.0

    def test_clear(self):
        recorder = self._recorder_with_phases()
        recorder.clear()
        assert recorder.report().total_seconds == 0.0
