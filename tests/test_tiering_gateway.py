"""Tiered serving end to end: conservation, determinism, routing,
report shape, and the planner's accuracy axis."""

import math

import numpy as np
import pytest

from repro.fleet import BrownoutConfig, FleetGateway, build_fleet
from repro.tiering import TIER_DEEP, TieringConfig
from repro.workloads.agentic import agentic_suite

CONFIG = TieringConfig(seed=0)
TIER_MODELS = tuple(dict.fromkeys(
    CONFIG.fast_models + CONFIG.deep_models + CONFIG.verify_models))


def tiered_report(seed=0, devices=4, jobs=12, qps=2.0, deadline_s=60.0,
                  config=CONFIG):
    fleet = build_fleet(devices, mix="balanced", models=TIER_MODELS)
    gateway = FleetGateway(fleet, policy="least-outstanding", seed=seed)
    suite = agentic_suite(np.random.default_rng(seed), qps, jobs,
                          deadline_s=deadline_s)
    return gateway.run(suite, tiering=config)


@pytest.fixture(scope="module")
def report():
    return tiered_report()


class TestConservation:
    def test_exact_over_dag_children(self, report):
        assert report.lost == 0
        assert (report.offered
                == report.completed + report.shed + report.failed)

    def test_offered_counts_every_planned_child(self, report):
        tier = report.tiering
        assert report.offered == tier.children_offered
        assert tier.jobs == 12
        assert tier.jobs_completed + tier.jobs_shed <= tier.jobs

    def test_budget_shed_children_stay_conserved(self):
        # A starvation budget sheds most jobs whole; their planned
        # children must still reach terminal dispositions.
        config = TieringConfig(seed=0, session_token_budget=700)
        report = tiered_report(config=config)
        assert report.lost == 0
        assert report.tiering.budget_shed_jobs > 0


class TestDeterminism:
    def test_same_seed_byte_identical(self, report):
        rerun = tiered_report()
        assert rerun.to_json() == report.to_json()

    def test_different_seed_differs(self, report):
        other = tiered_report(seed=1)
        assert other.to_json() != report.to_json()


class TestReportShape:
    def test_tiering_section_present_and_canonical(self, report):
        tier = report.tiering
        payload = report.to_dict()["tiering"]
        assert payload == tier.to_dict()
        assert 0.0 <= tier.answer_accuracy <= 1.0
        assert tier.mean_branches >= 1.0
        assert set(tier.tier_counts) <= {"fast", "deep"}

    def test_untiered_report_has_no_tiering_key(self):
        from repro.fleet import poisson_stream

        fleet = build_fleet(2, mix="balanced")
        gateway = FleetGateway(fleet, policy="least-outstanding")
        stream = poisson_stream(np.random.default_rng(0), qps=4.0,
                                num_requests=8)
        report = gateway.run(stream)
        assert report.tiering is None
        assert "tiering" not in report.to_dict()

    def test_tiering_none_is_byte_identical_to_plain_run(self):
        from repro.fleet import poisson_stream

        def run(**kwargs):
            fleet = build_fleet(2, mix="balanced")
            gateway = FleetGateway(fleet, policy="least-outstanding")
            stream = poisson_stream(np.random.default_rng(0), qps=4.0,
                                    num_requests=8)
            return gateway.run(stream, **kwargs)

        assert run().to_json() == run(tiering=None).to_json()


class TestGatewayIntegration:
    def test_brownout_and_tiering_mutually_exclusive(self):
        fleet = build_fleet(2, mix="balanced", models=TIER_MODELS)
        gateway = FleetGateway(fleet, policy="least-outstanding",
                               brownout=BrownoutConfig())
        suite = agentic_suite(np.random.default_rng(0), 2.0, 4)
        with pytest.raises(ValueError, match="load ladder"):
            gateway.run(suite, tiering=CONFIG)

    def test_deep_branches_land_on_deep_devices(self, report):
        # With every device up, the tier preference filter is exact:
        # a Deep branch never runs on a Fast-pool-only device.
        # Recover tier per rid by replaying the deterministic admission
        # (branch stages of deep-tier DAGs sit at base+1..base+branches).
        from repro.tiering import DagRun

        deep_rids = set()

        coordinator = DagRun(CONFIG)
        suite = agentic_suite(np.random.default_rng(0), 2.0, 12,
                              deadline_s=60.0)
        for j in suite:
            coordinator.admit(j, j.arrival_s, 0.0)
        for dag in coordinator.dags.values():
            if dag.assignment.tier == TIER_DEEP:
                deep_rids.update(dag.branch_rids)
        assert deep_rids  # the suite must exercise the Deep tier
        served_on = {}
        for device in report.devices:
            for served in device.report.served:
                served_on.setdefault(served.request_id, device.model)
        deep_served = [rid for rid in deep_rids if rid in served_on]
        assert deep_served
        for rid in deep_served:
            assert served_on[rid] in CONFIG.deep_models

    def test_energy_budget_accounted(self):
        config = TieringConfig(seed=0, session_energy_budget_j=5000.0)
        report = tiered_report(config=config)
        assert report.lost == 0
        assert report.tiering.energy_reserved_j > 0.0


class TestPlannerAccuracyAxis:
    def test_plan_fleet_tiering_fills_accuracy(self):
        from repro.core.planner import fleet_pareto, plan_fleet

        points = plan_fleet(device_counts=(3,), mixes=("balanced",),
                            policies=("least-outstanding",),
                            qps=1.5, num_requests=8, tiering=CONFIG)
        assert len(points) == 1
        assert not math.isnan(points[0].accuracy)
        frontier = fleet_pareto(points, value_axis="accuracy")
        assert frontier == points

    def test_untiered_accuracy_is_nan(self):
        from repro.core.planner import plan_fleet

        points = plan_fleet(device_counts=(2,), mixes=("balanced",),
                            policies=("round-robin",), qps=4.0,
                            num_requests=8)
        assert all(math.isnan(p.accuracy) for p in points)

    def test_bad_value_axis_rejected(self):
        from repro.core.planner import fleet_pareto

        with pytest.raises(ValueError, match="value_axis"):
            fleet_pareto([], value_axis="vibes")
