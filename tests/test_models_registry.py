"""Tests for the model registry."""

import pytest

from repro.models.config import ModelFamily
from repro.models.registry import (
    direct_models,
    get_model,
    list_models,
    reasoning_models,
)


class TestLookup:
    def test_canonical_names(self):
        assert get_model("dsr1-llama-8b").display_name == "DSR1-Llama-8B"

    def test_case_insensitive(self):
        assert get_model("DSR1-Llama-8B").name == "dsr1-llama-8b"

    @pytest.mark.parametrize("alias,name", [
        ("1.5b", "dsr1-qwen-1.5b"),
        ("8b", "dsr1-llama-8b"),
        ("14b", "dsr1-qwen-14b"),
        ("l1", "l1-max"),
        ("deepscaler", "deepscaler-1.5b"),
    ])
    def test_aliases(self, alias, name):
        assert get_model(alias).name == name

    def test_unknown_model_raises_with_known_list(self):
        with pytest.raises(KeyError, match="known models"):
            get_model("gpt-17")


class TestZooComposition:
    def test_paper_models_present(self):
        names = list_models()
        for expected in ("dsr1-qwen-1.5b", "dsr1-llama-8b", "dsr1-qwen-14b",
                         "l1-max", "deepscaler-1.5b", "qwen2.5-7b-it",
                         "llama3.1-8b-it", "gemma-7b-it"):
            assert expected in names

    def test_awq_variants_registered(self):
        names = list_models()
        for expected in ("dsr1-qwen-1.5b-awq-w4", "dsr1-llama-8b-awq-w4",
                         "dsr1-qwen-14b-awq-w4"):
            assert expected in names

    def test_reasoning_models_ordered_by_size(self):
        models = reasoning_models()
        sizes = [m.param_count for m in models]
        assert sizes == sorted(sizes)
        assert len(models) == 3

    def test_direct_models_family(self):
        for model in direct_models():
            assert model.family is ModelFamily.DIRECT

    def test_l1_is_budget_aware(self):
        assert get_model("l1-max").family is ModelFamily.BUDGET_AWARE

    def test_l1_shares_1p5b_backbone(self):
        l1 = get_model("l1-max")
        base = get_model("dsr1-qwen-1.5b")
        assert l1.param_count == base.param_count
        assert l1.kv_bytes_per_token == base.kv_bytes_per_token
