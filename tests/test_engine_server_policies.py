"""Tests for deadline-aware serving policies (FCFS vs EDF)."""

import numpy as np
import pytest

from repro.engine.engine import InferenceEngine
from repro.engine.request import GenerationRequest
from repro.engine.server import SCHEDULING_POLICIES, ServingSimulator
from repro.models.registry import get_model


@pytest.fixture(scope="module")
def engine():
    return InferenceEngine(get_model("dsr1-qwen-1.5b"))


def _burst(count, output=200):
    """A simultaneous burst with mixed deadlines."""
    requests = [GenerationRequest(i, 100, output) for i in range(count)]
    arrivals = np.zeros(count)
    # Alternating urgent (short) and relaxed (long) deadlines.
    deadlines = np.where(np.arange(count) % 2 == 0, 8.0, 120.0)
    return requests, arrivals, deadlines


class TestPolicies:
    def test_known_policies(self):
        assert SCHEDULING_POLICIES == ("fcfs", "edf")

    def test_unknown_policy_rejected(self, engine):
        with pytest.raises(ValueError):
            ServingSimulator(engine, policy="lifo")

    def test_edf_requires_deadlines(self, engine):
        simulator = ServingSimulator(engine, max_batch_size=2, policy="edf")
        requests, arrivals, _ = _burst(4)
        with pytest.raises(ValueError):
            simulator.run(requests, arrivals)

    def test_deadline_alignment_checked(self, engine):
        simulator = ServingSimulator(engine, max_batch_size=2)
        requests, arrivals, _ = _burst(4)
        with pytest.raises(ValueError):
            simulator.run(requests, arrivals, deadlines=np.zeros(3))


class TestEdfBehaviour:
    def test_edf_serves_urgent_requests_first(self, engine):
        requests, arrivals, deadlines = _burst(8)
        simulator = ServingSimulator(engine, max_batch_size=2, policy="edf")
        report = simulator.run(requests, arrivals, deadlines)
        urgent = [r for r in report.served if r.deadline_s == 8.0]
        relaxed = [r for r in report.served if r.deadline_s == 120.0]
        assert (np.mean([r.start_s for r in urgent])
                < np.mean([r.start_s for r in relaxed]))

    def test_edf_beats_fcfs_on_hit_rate(self, engine):
        requests, arrivals, deadlines = _burst(10)
        fcfs = ServingSimulator(engine, max_batch_size=2, policy="fcfs").run(
            requests, arrivals, deadlines)
        edf = ServingSimulator(engine, max_batch_size=2, policy="edf").run(
            requests, arrivals, deadlines)
        assert edf.deadline_hit_rate > fcfs.deadline_hit_rate

    def test_both_policies_serve_everyone(self, engine):
        requests, arrivals, deadlines = _burst(6)
        for policy in SCHEDULING_POLICIES:
            simulator = ServingSimulator(engine, max_batch_size=2,
                                         policy=policy)
            report = simulator.run(requests, arrivals, deadlines)
            assert report.completed == 6

    def test_hit_rate_without_deadlines_is_one(self, engine):
        requests, arrivals, _ = _burst(4)
        simulator = ServingSimulator(engine, max_batch_size=4)
        report = simulator.run(requests, arrivals)
        assert report.deadline_hit_rate == 1.0

    def test_met_deadline_field(self, engine):
        requests, arrivals, deadlines = _burst(4, output=64)
        simulator = ServingSimulator(engine, max_batch_size=4, policy="edf")
        report = simulator.run(requests, arrivals, deadlines)
        for request in report.served:
            assert request.met_deadline is not None
