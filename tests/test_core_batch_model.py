"""Tests for the batch-aware decode latency model."""

import numpy as np
import pytest

from repro.core.batch_model import (
    BatchedDecodeLatencyModel,
    fit_batched_decode_model,
)
from repro.core.latency_model import DecodeLatencyModel


@pytest.fixture(scope="module")
def batched_model(engine_8b):
    return fit_batched_decode_model(engine_8b, batches=(1, 4, 16, 64))


class TestFit:
    def test_batch1_matches_table5(self, batched_model):
        single = batched_model.coefficients(1)
        assert single.n == pytest.approx(0.092, rel=0.06)
        assert single.m == pytest.approx(6.92e-7, rel=0.10)

    def test_n_grows_with_batch(self, batched_model):
        ns = [batched_model.coefficients(b).n for b in (1, 4, 16, 64)]
        assert ns == sorted(ns)

    def test_m_scales_roughly_linearly(self, batched_model):
        # KV reads scale per sequence.
        m1 = batched_model.coefficients(1).m
        m16 = batched_model.coefficients(16).m
        assert 10 < m16 / m1 < 22

    def test_fig10a_multiplier_band(self, batched_model):
        # ~2x decode latency by SF=64 (Fig. 10a).
        assert 1.4 < batched_model.latency_multiplier(64) < 2.6
        assert batched_model.latency_multiplier(1) == pytest.approx(1.0)

    def test_multiplier_monotone(self, batched_model):
        multipliers = [batched_model.latency_multiplier(b)
                       for b in (1, 2, 4, 8, 16, 32, 64)]
        assert multipliers == sorted(multipliers)


class TestSurfacePredictions:
    def test_interpolated_batch_matches_substrate(self, batched_model,
                                                  engine_8b):
        # Batch 8 was NOT in the fit grid; interpolation must still track
        # the kernel engine.
        predicted = batched_model.decode_latency(512, 256, 8)
        steps = engine_8b.kernels.decode_step_seconds(
            engine_8b.profile, 512 + np.arange(256, dtype=float), 8)
        assert predicted == pytest.approx(float(steps.sum()), rel=0.03)

    def test_extrapolation_clamps_at_grid_edge(self, batched_model):
        edge = batched_model.coefficients(batched_model.max_fitted_batch)
        beyond = batched_model.coefficients(1000)
        assert beyond.n == pytest.approx(edge.n)

    def test_rejects_bad_batch(self, batched_model):
        with pytest.raises(ValueError):
            batched_model.coefficients(0)


class TestConstruction:
    def test_requires_sorted_batches(self):
        models = (DecodeLatencyModel(0, 0.1), DecodeLatencyModel(0, 0.2))
        with pytest.raises(ValueError):
            BatchedDecodeLatencyModel((4, 1), models)

    def test_requires_two_points(self):
        with pytest.raises(ValueError):
            BatchedDecodeLatencyModel((1,), (DecodeLatencyModel(0, 0.1),))

    def test_requires_alignment(self):
        with pytest.raises(ValueError):
            BatchedDecodeLatencyModel((1, 2), (DecodeLatencyModel(0, 0.1),))
