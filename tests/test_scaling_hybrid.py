"""Tests for hybrid sequential x parallel scaling."""

import numpy as np
import pytest

from repro.scaling.hybrid import (
    HybridPoint,
    best_under_latency,
    crossover_budget,
    hybrid_scaling_surface,
    sequential_only,
)


def _stats_fn(budget):
    """Accuracy saturates by ~128 tokens (the Sec. V-C inflection shape);
    moderate distractors; low determinism, so voting has headroom."""
    n = 400
    mean = min(0.2 + budget / 300.0, 0.45)
    p = np.clip(np.full(n, mean) + np.linspace(-0.15, 0.15, n), 0.01, 0.99)
    w = np.full(n, 0.3)
    g = np.full(n, 0.2)
    det = np.full(n, 0.1)
    return p, w, g, det


def _latency_fn(budget, scale_factor):
    """Width is cheap (batch shares weights); length is linear."""
    return 0.05 * budget * (1.0 + 0.05 * (scale_factor - 1))


@pytest.fixture(scope="module")
def surface():
    rng = np.random.default_rng(0)
    return hybrid_scaling_surface(
        _stats_fn, _latency_fn, 4,
        token_budgets=(64, 128, 256, 512),
        scale_factors=(1, 2, 4, 8),
        rng=rng,
    )


class TestSurface:
    def test_full_grid(self, surface):
        assert len(surface) == 16

    def test_accuracy_in_unit_interval(self, surface):
        assert all(0.0 <= pt.accuracy <= 1.0 for pt in surface)

    def test_latency_grows_with_both_axes(self, surface):
        by_key = {(pt.token_budget, pt.scale_factor): pt for pt in surface}
        assert by_key[(128, 1)].latency_s < by_key[(256, 1)].latency_s
        assert by_key[(128, 1)].latency_s < by_key[(128, 8)].latency_s

    def test_widening_helps_with_these_stats(self, surface):
        by_key = {(pt.token_budget, pt.scale_factor): pt for pt in surface}
        assert by_key[(128, 8)].accuracy > by_key[(128, 1)].accuracy

    def test_compute_tokens(self):
        point = HybridPoint(128, 4, 0.5, 10.0)
        assert point.total_compute_tokens == 512

    def test_input_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            hybrid_scaling_surface(_stats_fn, _latency_fn, 4, (0,), (1,), rng)
        with pytest.raises(ValueError):
            hybrid_scaling_surface(_stats_fn, _latency_fn, 4, (64,), (0,), rng)


class TestSelection:
    def test_best_respects_budget(self, surface):
        best = best_under_latency(surface, 10.0)
        assert best is not None
        assert best.latency_s <= 10.0

    def test_infeasible_returns_none(self, surface):
        assert best_under_latency(surface, 0.01) is None

    def test_larger_budget_never_worse(self, surface):
        small = best_under_latency(surface, 5.0)
        large = best_under_latency(surface, 40.0)
        assert large.accuracy >= small.accuracy

    def test_sequential_slice(self, surface):
        assert all(pt.scale_factor == 1 for pt in sequential_only(surface))
        assert len(sequential_only(surface)) == 4

    def test_hybrid_beats_pure_sequential_here(self, surface):
        budget = 10.0
        hybrid = best_under_latency(surface, budget)
        pure = best_under_latency(sequential_only(surface), budget)
        assert hybrid.accuracy >= pure.accuracy

    def test_crossover_found_for_saturating_stats(self, surface):
        # Once the per-budget accuracy saturates, widening beats
        # lengthening at equal compute.
        crossover = crossover_budget(surface)
        assert crossover is not None
        assert crossover <= 256


class TestSurfaceValidation:
    """Bad grids fail before the sweep starts, naming the bad values."""

    def _stats(self, budget):
        p = np.full(8, min(0.9, budget / 1000.0))
        return p, np.full(8, 0.2), np.zeros(8), np.zeros(8)

    def test_non_positive_budget_listed(self, rng):
        with pytest.raises(ValueError, match=r"token budgets.*\[0\]"):
            hybrid_scaling_surface(self._stats, lambda b, s: 1.0, 4,
                                   [0, 128], [1, 2], rng)

    def test_non_positive_factor_listed(self, rng):
        with pytest.raises(ValueError, match=r"scale factors.*\[-1\]"):
            hybrid_scaling_surface(self._stats, lambda b, s: 1.0, 4,
                                   [128], [-1, 2], rng)

    def test_non_positive_vote_trials_rejected(self, rng):
        with pytest.raises(ValueError, match="vote_trials"):
            hybrid_scaling_surface(self._stats, lambda b, s: 1.0, 4,
                                   [128], [1], rng, vote_trials=0)

    def test_malformed_stats_fn_rejected(self, rng):
        def bad_stats(budget):
            return np.full(4, 0.5), np.full(4, 0.2)

        with pytest.raises(ValueError, match="stats_fn"):
            hybrid_scaling_surface(bad_stats, lambda b, s: 1.0, 4,
                                   [128], [1], rng)

    def test_stats_shape_mismatch_surfaces_clearly(self, rng):
        def ragged_stats(budget):
            return (np.full(4, 0.5), np.full(3, 0.2), np.zeros(4),
                    np.zeros(4))

        with pytest.raises(ValueError, match="must align"):
            hybrid_scaling_surface(ragged_stats, lambda b, s: 1.0, 4,
                                   [128], [1], rng)
