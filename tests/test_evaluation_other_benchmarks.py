"""Evaluator tests on the non-MMLU workloads (math, planning)."""

import pytest

from repro.evaluation.evaluator import Evaluator
from repro.generation.control import base_control, direct_control, nr_control
from repro.hardware.soc import h100_like_server
from repro.models.registry import get_model
from repro.workloads.aime import aime2024
from repro.workloads.math500 import math500
from repro.workloads.natural_plan import natural_plan


class TestMathBenchmarks:
    def test_deepscaler_aime_accuracy(self):
        evaluator = Evaluator(aime2024(seed=0), seed=0)
        result = evaluator.evaluate(get_model("deepscaler-1.5b"),
                                    base_control())
        # Table III: 43.1% on AIME2024.
        assert result.accuracy == pytest.approx(0.431, abs=0.08)

    def test_aime_generations_are_long(self):
        evaluator = Evaluator(aime2024(seed=0), seed=0)
        result = evaluator.evaluate(get_model("deepscaler-1.5b"),
                                    base_control())
        assert result.mean_output_tokens > 4000

    def test_aime_single_stream_cost_band(self):
        # Section III-B: the whole 30-question AIME run at batch 1 costs
        # ~$0.30/1M tokens; the evaluator's serving-batch default is 10.
        from repro.core.cost import CostModel
        evaluator = Evaluator(aime2024(seed=0), seed=0,
                              cost_model=CostModel.single_stream())
        result = evaluator.evaluate(get_model("deepscaler-1.5b"),
                                    base_control())
        assert result.cost_per_million_tokens == pytest.approx(0.30, rel=0.3)

    def test_math500_easier_than_aime(self):
        model = get_model("deepscaler-1.5b")
        aime = Evaluator(aime2024(seed=0), seed=0).evaluate(
            model, base_control())
        math = Evaluator(math500(seed=0), seed=0).evaluate(
            model, base_control())
        assert math.accuracy > aime.accuracy + 0.3


class TestNaturalPlan:
    @pytest.fixture(scope="class")
    def evaluator(self):
        return Evaluator(natural_plan("meeting", seed=0, size=600),
                         soc=h100_like_server(), seed=0)

    def test_reasoning_accuracy_low(self, evaluator):
        result = evaluator.evaluate(get_model("dsr1-qwen-14b"), base_control())
        # Table XIII: 19.3% on meeting.
        assert result.accuracy == pytest.approx(0.193, abs=0.03)

    def test_nr_mode_matches_table14(self, evaluator):
        result = evaluator.evaluate(get_model("dsr1-qwen-14b"), nr_control())
        assert result.accuracy == pytest.approx(0.19, abs=0.03)
        assert result.mean_output_tokens < 500

    def test_direct_14b_table15(self, evaluator):
        result = evaluator.evaluate(get_model("qwen2.5-14b-it"),
                                    direct_control())
        assert result.accuracy == pytest.approx(0.272, abs=0.03)

    def test_server_latency_much_lower_than_edge(self):
        bench = natural_plan("meeting", seed=0, size=200)
        model = get_model("dsr1-qwen-14b")
        server = Evaluator(bench, soc=h100_like_server(), seed=0).evaluate(
            model, base_control())
        edge = Evaluator(bench, seed=0).evaluate(model, base_control())
        assert edge.mean_latency_seconds > 5 * server.mean_latency_seconds

    def test_prompts_are_long_fewshot(self, evaluator):
        result = evaluator.evaluate(get_model("dsr1-qwen-14b"), base_control())
        assert result.mean_prompt_tokens > 1200

    def test_missing_profile_raises(self, evaluator):
        with pytest.raises(KeyError):
            evaluator.evaluate(get_model("gemma-7b-it"), direct_control())
