"""Property tests: closed-form decode span vs the per-step roofline sum.

``KernelEngine.decode_span_seconds`` evaluates an N-token decode span in
O(1) by splitting the span at the analytic memory/compute crossover and
summing the memory-bound arithmetic series in closed form.  These tests
pin it against the reference ``decode_step_times(...).sum()`` across a
grid of models, prompts, span lengths, batch sizes, and Orin power
modes — including spans constructed to straddle the roofline crossover,
where an off-by-one in the compute-bound prefix length would show up.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.hardware.calibration import calibration_for_model
from repro.hardware.kernels import KernelEngine
from repro.hardware.memory import MemorySpec, MemorySystem
from repro.hardware.soc import PowerMode, jetson_orin_agx_64gb
from repro.models.registry import get_model

MODELS = ("dsr1-qwen-1.5b", "dsr1-llama-8b", "dsr1-qwen-14b")
INPUTS = (1, 32, 700, 4096)
OUTPUTS = (1, 7, 256, 2048)
BATCHES = (1, 2, 8, 16, 33)


def _engine_for(model_name: str,
                mode: PowerMode = PowerMode.MAXN) -> tuple:
    soc = jetson_orin_agx_64gb().at_mode(mode)
    memory = MemorySystem(MemorySpec(soc.dram_bandwidth, soc.l2_cache))
    model = get_model(model_name)
    profile = model.execution_profile()
    calib = calibration_for_model(profile.calibration_key)
    return KernelEngine(soc, memory, calib), profile


class TestClosedFormMatchesStepSum:
    @pytest.mark.parametrize("model_name", MODELS)
    def test_grid_exact(self, model_name):
        engine, profile = _engine_for(model_name)
        for input_len in INPUTS:
            for output_len in OUTPUTS:
                for batch in BATCHES:
                    reference = float(engine.decode_step_times(
                        profile, input_len, output_len, batch).sum())
                    closed = engine.decode_span_seconds(
                        profile, input_len, output_len, batch)
                    assert closed == pytest.approx(reference, rel=1e-12), (
                        model_name, input_len, output_len, batch)

    @pytest.mark.parametrize("mode", list(PowerMode))
    def test_power_modes_exact(self, mode):
        engine, profile = _engine_for("dsr1-llama-8b", mode)
        for batch in (1, 8, 33):
            reference = float(engine.decode_step_times(
                profile, 512, 300, batch).sum())
            closed = engine.decode_span_seconds(profile, 512, 300, batch)
            assert closed == pytest.approx(reference, rel=1e-12)

    @pytest.mark.parametrize("model_name", MODELS)
    @pytest.mark.parametrize("batch", (256, 512, 1024))
    def test_crossover_straddling_span(self, model_name, batch):
        """Spans that start compute-bound and end memory-bound.

        Large batch tilts the first steps compute-bound; the span is
        centered on the analytic crossover so both regimes contribute.
        """
        engine, profile = _engine_for(model_name)
        mem_const, kv_slope, compute_time, _ = engine._decode_span_terms(
            profile, batch)
        assert kv_slope > 0
        crossover = (compute_time - mem_const) / kv_slope
        if crossover < 1:
            pytest.skip("span never compute-bound at this batch")
        start = max(1, int(math.floor(crossover)) - 40)
        span = 80
        reference = float(engine.decode_step_times(
            profile, start, span, batch).sum())
        closed = engine.decode_span_seconds(profile, start, span, batch)
        assert closed == pytest.approx(reference, rel=1e-12)
        # The straddle is real: the first and last steps sit on
        # different sides of the roofline.
        steps = engine.decode_step_times(profile, start, span, batch)
        _, _, _, overhead = engine._decode_span_terms(profile, batch)
        first_ctx = start
        last_ctx = start + span - 1
        assert mem_const + kv_slope * first_ctx <= compute_time
        assert mem_const + kv_slope * last_ctx > compute_time
        assert steps[0] == pytest.approx(compute_time + overhead)

    def test_decode_uses_closed_form_total(self, kernels_8b):
        engine, profile = kernels_8b
        total = engine.decode(profile, 512, 64)
        assert total.seconds == pytest.approx(
            engine.decode_span_seconds(profile, 512, 64), rel=1e-12)

    def test_rejects_nonpositive_output_len(self, kernels_8b):
        engine, profile = kernels_8b
        with pytest.raises(ValueError):
            engine.decode_span_seconds(profile, 512, 0)


class TestAnalyticContextSlope:
    @pytest.mark.parametrize("model_name", MODELS)
    def test_matches_finite_difference(self, model_name):
        engine, profile = _engine_for(model_name)
        analytic = engine.decode_context_slope(profile)
        contexts = np.array([500.0, 1500.0])
        times = engine.decode_step_seconds(profile, contexts)
        finite = float(times[1] - times[0]) / 1000.0
        assert analytic == pytest.approx(finite, rel=1e-9)

    def test_zero_when_compute_bound(self):
        engine, profile = _engine_for("dsr1-qwen-1.5b")
        # At a huge batch the tile-padded GEMM dominates short contexts:
        # the slope at the reference context must collapse to zero.
        mem_const, kv_slope, compute_time, _ = engine._decode_span_terms(
            profile, 1024)
        reference = 100
        expected = (0.0 if mem_const + kv_slope * reference < compute_time
                    else kv_slope)
        assert engine.decode_context_slope(
            profile, batch=1024, reference_context=reference) == expected

    def test_slope_is_kv_term(self, kernels_8b):
        engine, profile = kernels_8b
        _, kv_slope, _, _ = engine._decode_span_terms(profile, 1)
        assert engine.decode_context_slope(profile) == kv_slope
