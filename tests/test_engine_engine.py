"""Integration tests for the inference engine over the hardware model."""

import numpy as np
import pytest

from repro.engine.engine import EngineConfig, InferenceEngine
from repro.engine.frameworks import available_frameworks, framework_profile
from repro.engine.request import GenerationRequest
from repro.models.registry import get_model


class TestSingleRequest:
    def test_deterministic(self, engine_8b):
        request = GenerationRequest(0, 100, 300)
        a = engine_8b.generate(request)
        b = engine_8b.generate(request)
        assert a.total_seconds == b.total_seconds
        assert a.energy.total_energy_joules == b.energy.total_energy_joules

    def test_tbt_matches_paper(self, engine_8b):
        result = engine_8b.generate(GenerationRequest(0, 512, 256))
        tbt = result.energy.decode_seconds / 256
        assert tbt == pytest.approx(0.092, rel=0.06)

    def test_decode_dominates_latency(self, engine_8b):
        # Takeaway #2: decode is >99% of reasoning inference time.
        result = engine_8b.generate(GenerationRequest(0, 150, 800))
        assert result.decode_seconds / result.total_seconds > 0.99

    def test_truncation_flag(self, engine_8b):
        result = engine_8b.generate(
            GenerationRequest(0, 100, 500, max_new_tokens=128))
        assert result.truncated
        assert result.output_tokens == 128

    def test_natural_stop_not_truncated(self, engine_8b):
        result = engine_8b.generate(
            GenerationRequest(0, 100, 100, max_new_tokens=128))
        assert not result.truncated
        assert result.output_tokens == 100

    def test_energy_positive_and_consistent(self, engine_8b):
        result = engine_8b.generate(GenerationRequest(0, 100, 200))
        report = result.energy
        assert report.total_energy_joules > 0
        assert report.total_energy_joules == pytest.approx(
            report.prefill_energy_joules + report.decode_energy_joules)

    def test_mean_power_within_envelope(self, engine_8b):
        result = engine_8b.generate(GenerationRequest(0, 100, 400))
        assert 0 < result.energy.mean_power_w <= engine_8b.soc.power_cap_w

    def test_longer_output_longer_latency(self, engine_8b):
        short = engine_8b.generate(GenerationRequest(0, 100, 100))
        long = engine_8b.generate(GenerationRequest(0, 100, 400))
        assert long.decode_seconds > short.decode_seconds

    def test_kv_cache_released_after_generate(self, engine_8b):
        used_before = engine_8b.kv_cache.used_blocks
        engine_8b.generate(GenerationRequest(0, 100, 200))
        assert engine_8b.kv_cache.used_blocks == used_before


class TestParallelScalingBehaviour:
    def test_prefill_runs_once(self, engine_1p5b):
        single = engine_1p5b.generate(GenerationRequest(0, 200, 128, n=1))
        parallel = engine_1p5b.generate(GenerationRequest(0, 200, 128, n=16))
        assert parallel.prefill_seconds == pytest.approx(single.prefill_seconds)

    def test_latency_grows_slowly_with_sf(self, engine_1p5b):
        # Fig. 10a: ~2x decode latency from SF=1 to SF=64.
        single = engine_1p5b.generate(GenerationRequest(0, 200, 128, n=1))
        sf64 = engine_1p5b.generate(GenerationRequest(0, 200, 128, n=64))
        ratio = sf64.decode_seconds / single.decode_seconds
        assert 1.4 < ratio < 2.6

    def test_energy_grows_with_sf(self, engine_1p5b):
        single = engine_1p5b.generate(GenerationRequest(0, 200, 128, n=1))
        sf16 = engine_1p5b.generate(GenerationRequest(0, 200, 128, n=16))
        assert sf16.energy.total_energy_joules > single.energy.total_energy_joules

    def test_gpu_busy_rises_with_sf(self, engine_1p5b):
        single = engine_1p5b.generate(GenerationRequest(0, 200, 128, n=1))
        sf16 = engine_1p5b.generate(GenerationRequest(0, 200, 128, n=16))
        assert sf16.gpu_busy > single.gpu_busy

    def test_dram_write_util_below_10pct(self, engine_1p5b):
        # The paper observes write bandwidth stays below ~10%.
        result = engine_1p5b.generate(GenerationRequest(0, 200, 128, n=16))
        assert result.dram_write_util < 0.10

    def test_staggered_sample_lengths(self, engine_1p5b):
        result = engine_1p5b.generate(GenerationRequest(
            0, 200, 128, n=3, sample_natural_lengths=(64, 96, 128)))
        assert result.total_output_tokens == 64 + 96 + 128


class TestBatchRuns:
    def test_token_conservation(self, engine_1p5b):
        requests = [GenerationRequest(i, 100, 200) for i in range(6)]
        report = engine_1p5b.run_batch(requests, max_batch_size=3)
        assert report.total_output_tokens == 6 * 200
        assert report.total_tokens == 6 * 300

    def test_batching_reduces_wallclock(self, engine_1p5b):
        requests = [GenerationRequest(i, 100, 200) for i in range(8)]
        serial = engine_1p5b.run_batch(requests, max_batch_size=1)
        batched = engine_1p5b.run_batch(requests, max_batch_size=8)
        assert batched.wallclock_seconds < serial.wallclock_seconds / 2

    def test_results_returned_per_request(self, engine_1p5b):
        requests = [GenerationRequest(i, 100, 100 + 10 * i) for i in range(4)]
        report = engine_1p5b.run_batch(requests, max_batch_size=4)
        assert len(report.results) == 4
        assert [r.request_id for r in report.results] == [0, 1, 2, 3]

    def test_earlier_finishers_have_lower_latency(self, engine_1p5b):
        requests = [GenerationRequest(0, 100, 64), GenerationRequest(1, 100, 256)]
        report = engine_1p5b.run_batch(requests, max_batch_size=2)
        short, long = report.results
        assert short.decode_seconds < long.decode_seconds

    def test_throughput_positive(self, engine_1p5b):
        requests = [GenerationRequest(i, 100, 100) for i in range(3)]
        report = engine_1p5b.run_batch(requests, max_batch_size=3)
        assert report.tokens_per_second > 0


class TestEngineConstruction:
    def test_oom_model_rejected(self, orin):
        from dataclasses import replace
        giant = replace(get_model("dsr1-qwen-14b"), name="giant",
                        num_layers=300)
        with pytest.raises(MemoryError):
            InferenceEngine(giant, soc=orin)

    def test_context_window_enforced(self, model_8b):
        from dataclasses import replace
        tiny = replace(get_model("dsr1-qwen-1.5b"), name="tiny-ctx",
                       max_context_tokens=256)
        engine = InferenceEngine(tiny)
        with pytest.raises(ValueError, match="context"):
            engine.generate(GenerationRequest(0, 200, 200))
        # Within the window is fine.
        engine.generate(GenerationRequest(0, 100, 100))

    def test_framework_profiles_exist(self):
        assert set(available_frameworks()) == {"hft", "trt-llm", "vllm"}

    def test_framework_aliases(self):
        assert framework_profile("transformers").name.startswith("HuggingFace")
        assert framework_profile("trt").version == "0.12"

    def test_unknown_framework(self):
        with pytest.raises(KeyError):
            framework_profile("sglang")

    def test_hft_slower_than_vllm(self, model_8b):
        vllm = InferenceEngine(model_8b, config=EngineConfig(framework="vllm"))
        hft = InferenceEngine(model_8b, config=EngineConfig(framework="hft"))
        request = GenerationRequest(0, 16, 128)
        ratio = (hft.generate(request).total_seconds
                 / vllm.generate(request).total_seconds)
        # Table IX: 1.11-1.13x.
        assert 1.05 < ratio < 1.25


class TestScheduledBatchVectorization:
    """The scatter/prefix-sum live-prompt accumulation in _run_scheduled.

    Heterogeneous prompts and staggered stop lengths must price each
    decode step with the mean prompt of the sequences still live — the
    vectorized np.add.at path is pinned against a naive per-step loop.
    """

    def _reference_mean_prompt(self, prompts, stops):
        num_steps = int(max(stops))
        means = np.zeros(num_steps)
        for step in range(num_steps):
            live = [p for p, s in zip(prompts, stops) if s > step]
            if live:
                means[step] = sum(live) / len(live)
        return means

    def test_live_prompt_mean_matches_naive_loop(self):
        rng = np.random.default_rng(5)
        prompts = rng.integers(16, 900, size=12).astype(np.float64)
        stops = rng.integers(1, 200, size=12)
        num_steps = int(stops.max())
        from repro.engine.sampler import active_sequences_per_step
        active = active_sequences_per_step(stops, num_steps)
        delta = np.zeros(num_steps + 1)
        delta[0] = prompts.sum()
        np.add.at(delta, stops, -prompts)
        live_prompt_sum = np.cumsum(delta[:-1])
        mean_prompt = np.zeros(num_steps)
        np.divide(live_prompt_sum, active, out=mean_prompt, where=active > 0)
        reference = self._reference_mean_prompt(prompts, stops)
        np.testing.assert_allclose(mean_prompt, reference, rtol=1e-12)

    def test_duplicate_stop_lengths_accumulate(self):
        # Two sequences exiting at the same step must both leave the
        # live-prompt sum (np.add.at, not fancy-index assignment).
        prompts = np.array([100.0, 300.0, 500.0])
        stops = np.array([4, 4, 8])
        num_steps = 8
        delta = np.zeros(num_steps + 1)
        delta[0] = prompts.sum()
        np.add.at(delta, stops, -prompts)
        live = np.cumsum(delta[:-1])
        assert live[3] == 900.0
        assert live[4] == 500.0

    def test_heterogeneous_batch_run_executes(self, engine_1p5b):
        requests = [GenerationRequest(i, prompt, output)
                    for i, (prompt, output) in enumerate(
                        [(32, 40), (512, 5), (512, 5), (900, 120)])]
        report = engine_1p5b.run_batch(requests)
        assert len(report.results) == 4
        assert report.wallclock_seconds > 0
        assert np.isfinite(report.total_energy_joules)
