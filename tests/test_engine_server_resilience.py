"""Tests for fault injection and graceful degradation in the server."""


import numpy as np
import pytest

from repro.engine.engine import InferenceEngine
from repro.engine.kv_cache import KVCacheConfig, PagedKVCache
from repro.engine.request import GenerationRequest
from repro.engine.server import ResilienceReport, ServingSimulator
from repro.faults.degradation import DegradationPolicy
from repro.faults.injector import FaultInjector, FaultScheduleConfig
from repro.generation.control import hard_budget
from repro.hardware.thermal import ThermalConfig
from repro.models.registry import get_model


@pytest.fixture(scope="module")
def engine():
    return InferenceEngine(get_model("dsr1-qwen-1.5b"))


def _requests(count, output=64, prompt=100):
    return [GenerationRequest(i, prompt, output) for i in range(count)]


def _tiny_cache(engine, tokens):
    """A paged cache holding roughly ``tokens`` tokens."""
    model = engine.model
    return PagedKVCache(KVCacheConfig(
        bytes_per_token=model.kv_bytes_per_token,
        capacity_bytes=model.kv_bytes_per_token * tokens))


def _quiet_faults(**overrides):
    base = dict(horizon_s=200.0, thermal_episodes=0, dvfs_drops=0,
                transient_slowdowns=0, kv_pressure_spikes=0)
    base.update(overrides)
    return FaultInjector(FaultScheduleConfig(**base), seed=0)


class TestReportType:
    def test_run_returns_resilience_report(self, engine):
        sim = ServingSimulator(engine, max_batch_size=4)
        report = sim.run(_requests(3), np.zeros(3))
        assert isinstance(report, ResilienceReport)
        assert report.offered == 3
        assert report.preemptions == 0
        assert report.retries == 0
        assert report.throttle_residency_s == 0.0

    def test_fault_free_run_unchanged_by_inert_policy(self, engine):
        plain = ServingSimulator(engine, max_batch_size=4)
        inert = ServingSimulator(engine, max_batch_size=4,
                                 degradation=DegradationPolicy())
        a = plain.run(_requests(4), np.zeros(4))
        b = inert.run(_requests(4), np.zeros(4))
        assert [r.finish_s for r in a.served] == [r.finish_s for r in b.served]


class TestPreemption:
    def test_kv_exhaustion_preempts_and_resumes(self, engine):
        # Cache fits ~2 full sequences; batch cap of 4 forces eviction
        # as contexts grow, and evicted requests must still complete.
        cache = _tiny_cache(engine, 2 * (100 + 64) + 32)
        sim = ServingSimulator(engine, max_batch_size=4, kv_cache=cache)
        report = sim.run(_requests(4), np.zeros(4))
        assert report.completed == 4
        assert report.preemptions >= 1
        assert report.resumes >= 1
        assert report.total_output_tokens == 4 * 64
        assert cache.used_blocks == 0          # cleaned up after the run

    def test_preempted_request_reports_multiple_attempts(self, engine):
        cache = _tiny_cache(engine, 2 * (100 + 64) + 32)
        sim = ServingSimulator(engine, max_batch_size=4, kv_cache=cache)
        report = sim.run(_requests(4), np.zeros(4))
        assert max(r.attempts for r in report.served) >= 2

    def test_unservable_request_fails_not_hangs(self, engine):
        # A prompt larger than the whole cache can never be admitted.
        cache = _tiny_cache(engine, 64)
        sim = ServingSimulator(engine, max_batch_size=2, kv_cache=cache)
        report = sim.run(_requests(1, prompt=5000, output=8), np.zeros(1))
        assert report.completed == 0
        assert report.failed == 1

    def test_kv_pressure_spike_forces_preemption(self, engine):
        faults = _quiet_faults(kv_pressure_spikes=1,
                               kv_pressure_fraction=0.9,
                               kv_pressure_duration_s=(100.0, 100.0))
        cache = _tiny_cache(engine, 8 * (100 + 64))
        sim = ServingSimulator(engine, max_batch_size=8, kv_cache=cache,
                               faults=faults)
        report = sim.run(_requests(8), np.zeros(8))
        assert report.completed == 8
        assert report.preemptions >= 1
        assert cache.used_blocks == 0
        assert cache.reserved_blocks == 0


class TestRetries:
    def test_injected_abort_fails_without_policy(self, engine):
        faults = _quiet_faults(abort_rate=1.0)
        sim = ServingSimulator(engine, max_batch_size=4, faults=faults)
        report = sim.run(_requests(3), np.zeros(3))
        assert report.completed == 0
        assert report.injected_aborts == 3
        assert report.failed == 3
        assert report.retries == 0

    def test_retry_recovers_injected_abort(self, engine):
        faults = _quiet_faults(abort_rate=1.0)
        sim = ServingSimulator(engine, max_batch_size=4, faults=faults,
                               degradation=DegradationPolicy(max_retries=2))
        report = sim.run(_requests(3), np.zeros(3))
        assert report.completed == 3
        assert report.injected_aborts == 3
        assert report.retries == 3
        assert report.successful_retries == 3
        assert report.failed == 0
        assert all(r.attempts == 2 for r in report.served)

    def test_zero_retry_budget_fails(self, engine):
        faults = _quiet_faults(abort_rate=1.0)
        sim = ServingSimulator(engine, max_batch_size=4, faults=faults,
                               degradation=DegradationPolicy(max_retries=0))
        report = sim.run(_requests(2), np.zeros(2))
        assert report.completed == 0
        assert report.failed == 2

    def test_backoff_delays_retry(self, engine):
        faults = _quiet_faults(abort_rate=1.0)
        slow = ServingSimulator(
            engine, max_batch_size=4, faults=faults,
            degradation=DegradationPolicy(max_retries=1,
                                          retry_backoff_s=5.0))
        fast = ServingSimulator(
            engine, max_batch_size=4, faults=faults,
            degradation=DegradationPolicy(max_retries=1,
                                          retry_backoff_s=0.1))
        a = slow.run(_requests(1), np.zeros(1))
        b = fast.run(_requests(1), np.zeros(1))
        assert a.served[0].finish_s > b.served[0].finish_s + 4.0


class TestTimeouts:
    def test_watchdog_aborts_long_attempts(self, engine):
        sim = ServingSimulator(
            engine, max_batch_size=2,
            degradation=DegradationPolicy(timeout_s=1.0))
        report = sim.run(_requests(2, output=2000), np.zeros(2))
        assert report.timeouts == 2
        assert report.failed == 2
        assert report.completed == 0

    def test_timeout_retry_opt_in(self, engine):
        sim = ServingSimulator(
            engine, max_batch_size=2,
            degradation=DegradationPolicy(timeout_s=1.0, max_retries=1,
                                          retry_on_timeout=True,
                                          retry_backoff_s=0.1))
        report = sim.run(_requests(1, output=2000), np.zeros(1))
        assert report.timeouts == 2        # both attempts time out
        assert report.retries == 1
        assert report.failed == 1


class TestAdmissionControl:
    def test_reject_mode_sheds_backlog(self, engine):
        policy = DegradationPolicy(shed_queue_depth=2, shed_mode="reject")
        sim = ServingSimulator(engine, max_batch_size=2, degradation=policy)
        report = sim.run(_requests(10), np.zeros(10))
        assert report.shed > 0
        assert report.completed + report.shed == 10

    def test_degrade_mode_shrinks_budgets(self, engine):
        policy = DegradationPolicy(shed_queue_depth=2, shed_mode="degrade",
                                   degraded_control=hard_budget(16))
        sim = ServingSimulator(engine, max_batch_size=2, degradation=policy)
        report = sim.run(_requests(10, output=64), np.zeros(10))
        assert report.completed == 10
        assert report.shed == 0
        assert report.degraded_requests > 0
        assert report.tokens_saved == report.degraded_requests * (64 - 16)
        degraded = [r for r in report.served if r.degraded]
        assert degraded
        assert all(r.output_tokens == 16 for r in degraded)

    def test_degraded_budget_is_sticky_across_preemption(self, engine):
        # A degraded request that later re-queues into an empty backlog
        # keeps its shrunken budget (and is not double-counted).
        cache = _tiny_cache(engine, 2 * (100 + 64) + 32)
        policy = DegradationPolicy(shed_queue_depth=1, shed_mode="degrade",
                                   degraded_control=hard_budget(16))
        sim = ServingSimulator(engine, max_batch_size=4, kv_cache=cache,
                               degradation=policy)
        report = sim.run(_requests(6, output=64), np.zeros(6))
        assert report.completed == 6
        assert report.tokens_saved == report.degraded_requests * (64 - 16)

    def test_light_load_never_degrades(self, engine):
        # Regression: future arrivals still in ``pending`` are not
        # backlog.  Widely spaced requests (queue always empty) must go
        # through untouched even with an aggressive shed threshold.
        policy = DegradationPolicy(shed_queue_depth=0, shed_mode="degrade",
                                   degraded_control=hard_budget(16))
        sim = ServingSimulator(engine, max_batch_size=2, degradation=policy)
        arrivals = np.arange(20, dtype=np.float64) * 1000.0
        report = sim.run(_requests(20, output=64), arrivals)
        assert report.completed == 20
        assert report.degraded_requests == 0
        assert report.tokens_saved == 0

    def test_light_load_never_rejects(self, engine):
        policy = DegradationPolicy(shed_queue_depth=0, shed_mode="reject")
        sim = ServingSimulator(engine, max_batch_size=2, degradation=policy)
        arrivals = np.arange(20, dtype=np.float64) * 1000.0
        report = sim.run(_requests(20), arrivals)
        assert report.completed == 20
        assert report.shed == 0

    def test_reject_mode_sheds_tail_not_head(self, engine):
        # Under EDF overload the controller must reject the requests
        # with the *latest* deadlines, keeping the most urgent ones.
        policy = DegradationPolicy(shed_queue_depth=2, shed_mode="reject")
        sim = ServingSimulator(engine, max_batch_size=1, policy="edf",
                               degradation=policy)
        deadlines = np.array([10.0, 20.0, 30.0, 40.0, 50.0, 60.0])
        report = sim.run(_requests(6, output=8), np.zeros(6), deadlines)
        assert report.shed > 0
        served_ids = {r.request_id for r in report.served}
        # The tightest deadlines (earliest request ids) survive.
        assert served_ids == set(range(report.completed))

    def test_drop_expired_shed_counts_as_miss(self, engine):
        policy = DegradationPolicy(drop_expired=True)
        sim = ServingSimulator(engine, max_batch_size=1, degradation=policy)
        deadlines = np.array([100.0, 0.001])
        report = sim.run(_requests(2, output=400), np.zeros(2), deadlines)
        assert report.shed == 1
        assert report.completed == 1
        # The dropped request still counts against the offered hit rate.
        assert report.deadline_hit_rate == pytest.approx(0.5)


class TestThermalIntegration:
    def test_sustained_load_throttles(self, engine):
        thermal = ThermalConfig(heat_capacity_j_per_c=2.0,
                                conductance_w_per_c=0.2,
                                throttle_trip_c=55.0, resume_c=50.0)
        sim = ServingSimulator(engine, max_batch_size=8, thermal=thermal)
        report = sim.run(_requests(8, output=256), np.zeros(8))
        assert report.thermal_throttle_events >= 1
        assert report.throttle_residency_s > 0
        assert 0.0 < report.throttle_residency_frac <= 1.0

    def test_throttling_slows_completion(self, engine):
        thermal = ThermalConfig(heat_capacity_j_per_c=2.0,
                                conductance_w_per_c=0.2,
                                throttle_trip_c=55.0, resume_c=50.0,
                                throttle_derate=0.5)
        cool = ServingSimulator(engine, max_batch_size=8)
        hot = ServingSimulator(engine, max_batch_size=8, thermal=thermal)
        a = cool.run(_requests(8, output=256), np.zeros(8))
        b = hot.run(_requests(8, output=256), np.zeros(8))
        assert b.wallclock_s > a.wallclock_s

    def test_fault_slowdown_accumulates(self, engine):
        # horizon_s=1.0 pins the episode start inside the run window.
        faults = _quiet_faults(horizon_s=1.0, dvfs_drops=1, dvfs_speed=0.5,
                               dvfs_duration_s=(150.0, 150.0))
        sim = ServingSimulator(engine, max_batch_size=4, faults=faults)
        report = sim.run(_requests(4, output=128), np.zeros(4))
        assert report.fault_slowdown_s > 0
        assert report.throttle_residency_s > 0


class TestDeterminism:
    def test_chaos_run_bitwise_deterministic(self, engine):
        faults = FaultInjector(FaultScheduleConfig(
            horizon_s=120.0, abort_rate=0.3, kv_pressure_spikes=2,
            kv_pressure_fraction=0.7), seed=9)
        thermal = ThermalConfig(heat_capacity_j_per_c=5.0,
                                conductance_w_per_c=0.2,
                                throttle_trip_c=55.0, resume_c=50.0)
        policy = DegradationPolicy(max_retries=2, retry_backoff_s=0.2,
                                   shed_queue_depth=3,
                                   degraded_control=hard_budget(32))
        cache_tokens = 4 * (100 + 64)
        reports = []
        for _ in range(2):
            sim = ServingSimulator(
                engine, max_batch_size=4, policy="edf", faults=faults,
                thermal=thermal, degradation=policy,
                kv_cache=_tiny_cache(engine, cache_tokens))
            arrivals = np.linspace(0.0, 10.0, 12)
            deadlines = np.full(12, 60.0)
            reports.append(sim.run(_requests(12), arrivals, deadlines))
        assert reports[0] == reports[1]

    def test_shared_engine_cache_left_clean(self, engine):
        cache = engine.kv_cache
        sim = ServingSimulator(engine, max_batch_size=4,
                               faults=_quiet_faults(abort_rate=0.5),
                               degradation=DegradationPolicy(max_retries=1))
        sim.run(_requests(6), np.zeros(6))
        assert cache.used_blocks == 0
        assert cache.reserved_blocks == 0


class TestDegradationPolicyValidation:
    @pytest.mark.parametrize("kwargs", [
        {"timeout_s": 0.0},
        {"max_retries": -1},
        {"retry_backoff_s": 0.0},
        {"shed_mode": "panic"},
        {"shed_queue_depth": -1},
    ])
    def test_bad_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            DegradationPolicy(**kwargs)

    def test_backoff_doubles(self):
        policy = DegradationPolicy(retry_backoff_s=0.5)
        assert policy.backoff_s(1) == pytest.approx(0.5)
        assert policy.backoff_s(2) == pytest.approx(1.0)
        assert policy.backoff_s(3) == pytest.approx(2.0)

    def test_degraded_budget_requires_enforcing_control(self):
        from repro.generation.control import base_control
        assert DegradationPolicy().degraded_budget() is None
        assert (DegradationPolicy(degraded_control=base_control())
                .degraded_budget() is None)
        assert (DegradationPolicy(degraded_control=hard_budget(64))
                .degraded_budget() == 64)
