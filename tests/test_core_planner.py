"""Tests for the deployment planner."""

import pytest

from repro.core.characterize import characterize_model
from repro.core.latency_model import (
    DecodeLatencyModel,
    PrefillLatencyModel,
    TotalLatencyModel,
)
from repro.core.planner import (
    BudgetAwareCandidate,
    CandidateConfig,
    DeploymentPlanner,
    build_planner,
)
from repro.generation.control import base_control
from repro.generation.length import LengthModel
from repro.models.capability import capability_profile
from repro.models.registry import get_model


def _latency_model(tbt=0.1, prefill=0.1):
    return TotalLatencyModel(
        PrefillLatencyModel(0.0, 0.0, prefill),
        DecodeLatencyModel(0.0, tbt),
    )


def _candidate(name="m", accuracy=0.5, tokens=100, tbt=0.1):
    return CandidateConfig(
        model=get_model("dsr1-qwen-1.5b"),
        control=base_control(),
        expected_output_tokens=tokens,
        predicted_accuracy=accuracy,
        latency=_latency_model(tbt),
    )


class TestPlannerSelection:
    def test_picks_highest_accuracy_feasible(self):
        fast_weak = _candidate(accuracy=0.3, tokens=10)      # ~1.1 s
        slow_strong = _candidate(accuracy=0.8, tokens=500)   # ~50 s
        planner = DeploymentPlanner([fast_weak, slow_strong])
        assert planner.plan(5.0).chosen.predicted_accuracy == 0.3
        assert planner.plan(100.0).chosen.predicted_accuracy == 0.8

    def test_infeasible_budget(self):
        planner = DeploymentPlanner([_candidate(tokens=1000)])
        decision = planner.plan(0.05)
        assert not decision.feasible
        assert decision.predicted_accuracy == 0.0

    def test_accuracy_monotone_in_budget(self):
        candidates = [_candidate(accuracy=a, tokens=t)
                      for a, t in ((0.2, 5), (0.5, 100), (0.9, 1000))]
        planner = DeploymentPlanner(candidates)
        accs = [planner.plan(b).predicted_accuracy for b in (1, 15, 150)]
        assert accs == sorted(accs)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            DeploymentPlanner([])

    def test_rejects_non_positive_budget(self):
        planner = DeploymentPlanner([_candidate()])
        with pytest.raises(ValueError):
            planner.plan(0.0)

    def test_frontier_length(self):
        planner = DeploymentPlanner([_candidate()])
        decisions = planner.frontier([1.0, 10.0, 100.0])
        assert len(decisions) == 3

    def test_ties_prefer_lower_latency(self):
        fast = _candidate(accuracy=0.5, tokens=10)
        slow = _candidate(accuracy=0.5, tokens=100)
        planner = DeploymentPlanner([fast, slow])
        assert planner.plan(100.0).chosen.expected_output_tokens == 10


class TestBudgetAwareCandidate:
    @pytest.fixture(scope="class")
    def l1_candidate(self):
        model = get_model("l1-max")
        return BudgetAwareCandidate(
            model=model,
            capability=capability_profile("l1-max", "mmlu-redux"),
            lengths=LengthModel(model, "mmlu-redux"),
            latency=characterize_model(model, power_samples=1).latency,
        )

    def test_respects_latency_budget(self, l1_candidate):
        for budget in (0.5, 1.0, 3.0, 10.0):
            chosen = l1_candidate.best_under_budget(budget, 128)
            if chosen is not None:
                assert chosen.predicted_latency(128) <= budget * 1.05

    def test_larger_budget_more_tokens(self, l1_candidate):
        small = l1_candidate.best_under_budget(1.0, 128)
        large = l1_candidate.best_under_budget(20.0, 128)
        assert large.control.budget > small.control.budget

    def test_impossible_budget_returns_none(self, l1_candidate):
        assert l1_candidate.best_under_budget(0.01, 4096) is None


class TestBuildPlanner:
    @pytest.fixture(scope="class")
    def planner(self):
        return build_planner(
            model_names=("dsr1-qwen-1.5b", "qwen2.5-14b-it"),
            budget_aware_model="l1-max",
        )

    def test_includes_direct_and_reasoning(self, planner):
        labels = {c.label for c in planner.candidates}
        assert any("Direct" in label for label in labels)
        assert any("Base" in label for label in labels)

    def test_budget_aware_present(self, planner):
        assert len(planner.budget_aware) == 1

    def test_frontier_is_monotone(self, planner):
        decisions = planner.frontier([0.5, 2.0, 10.0, 60.0, 300.0])
        accuracies = [d.predicted_accuracy for d in decisions]
        assert accuracies == sorted(accuracies)

    def test_all_decisions_respect_budget(self, planner):
        for decision in planner.frontier([1.0, 5.0, 30.0, 120.0]):
            if decision.feasible:
                assert decision.predicted_latency_s <= decision.latency_budget_s

    def test_cost_cap_shifts_choice(self, planner):
        # Section V-D: tight $/1M-token caps force smaller / direct
        # models even when the latency budget is generous.
        unconstrained = planner.plan(300.0)
        capped = planner.plan(300.0, max_cost_per_mtok=0.02)
        if capped.feasible:
            cost = capped.chosen.predicted_cost_per_mtok(128)
            assert cost is None or cost <= 0.02
            assert capped.predicted_accuracy <= unconstrained.predicted_accuracy

    def test_bad_cost_cap_rejected(self, planner):
        with pytest.raises(ValueError):
            planner.plan(10.0, max_cost_per_mtok=0.0)

    def test_candidates_expose_cost(self, planner):
        costs = [c.predicted_cost_per_mtok(128) for c in planner.candidates]
        assert any(cost is not None and cost > 0 for cost in costs)

    def test_parallel_candidates_extend_frontier(self):
        # Latency-aware test-time scaling: voted parallel configs beat
        # the best sequential config at mid-range budgets.
        sequential = build_planner(model_names=("dsr1-qwen-14b",),
                                   budget_aware_model=None)
        parallel = build_planner(model_names=("dsr1-qwen-14b",),
                                 budget_aware_model=None,
                                 parallel_factors=(8, 16))
        budget = 20.0
        seq_acc = sequential.plan(budget).predicted_accuracy
        par_decision = parallel.plan(budget)
        assert par_decision.predicted_accuracy > seq_acc + 0.1
        assert par_decision.chosen.parallel > 1
        assert "x" in par_decision.chosen.label

    def test_parallel_latency_multiplier_applied(self):
        planner = build_planner(model_names=("dsr1-qwen-14b",),
                                budget_aware_model=None,
                                parallel_factors=(16,))
        wide = [c for c in planner.candidates if c.parallel == 16]
        narrow = [c for c in planner.candidates if c.parallel == 1
                  and c.control.enforces_budget]
        assert wide and narrow
        by_label = {c.control.label: c for c in narrow}
        for candidate in wide:
            base = by_label[candidate.control.label]
            assert (candidate.predicted_latency(128)
                    > base.predicted_latency(128))
            assert candidate.parallel_latency_multiplier > 1.0

    def test_energy_cap_cascades_to_smaller_configs(self):
        planner = build_planner(
            model_names=("dsr1-qwen-1.5b", "dsr1-qwen-14b"),
            budget_aware_model=None)
        unconstrained = planner.plan(300.0)
        tight = planner.plan(300.0, max_energy_j=100.0)
        assert tight.feasible
        energy = tight.chosen.predicted_energy_j(128)
        assert energy is not None and energy <= 100.0
        assert tight.predicted_accuracy < unconstrained.predicted_accuracy

    def test_bad_energy_cap_rejected(self, planner):
        with pytest.raises(ValueError):
            planner.plan(10.0, max_energy_j=-1.0)

    def test_models_without_profile_skipped(self):
        # deepscaler has no naturalplan profile; builder must not crash.
        planner = build_planner(
            model_names=("dsr1-qwen-14b", "deepscaler-1.5b"),
            benchmark="naturalplan-calendar",
            budget_aware_model=None,
        )
        assert all("DeepScaleR" not in c.label for c in planner.candidates)
