"""Tests for the output-length model."""

import numpy as np
import pytest

from repro.generation.control import (
    base_control,
    direct_control,
    hard_budget,
    nr_control,
    soft_budget,
)
from repro.generation.length import DEFAULT_MAX_TOKENS, LengthModel
from repro.models.registry import get_model


@pytest.fixture()
def lengths_8b(model_8b):
    return LengthModel(model_8b, "mmlu-redux")


@pytest.fixture()
def lengths_l1():
    return LengthModel(get_model("l1-max"), "mmlu-redux")


class TestMeasuredMeans:
    """Means must match the paper's Avg toks/question columns."""

    @pytest.mark.parametrize("control,expected", [
        (base_control(), 811.1),
        (hard_budget(128), 76.3),
        (hard_budget(256), 143.6),
        (soft_budget(128), 437.0),
        (soft_budget(256), 933.0),
        (nr_control(), 182.9),
    ])
    def test_8b_table11_means(self, lengths_8b, control, expected):
        assert lengths_8b.mean_tokens(control) == expected
        assert lengths_8b.has_measurement(control)

    def test_direct_mean(self):
        lengths = LengthModel(get_model("llama3.1-8b-it"), "mmlu-redux")
        assert lengths.mean_tokens(direct_control()) == 63.5

    def test_soft_128_overshoots_for_1p5b(self, model_1p5b):
        # The paper's oddity: the NC-128 prompt makes the 1.5B ramble to
        # ~1474 tokens — twice its Base length.
        lengths = LengthModel(model_1p5b, "mmlu-redux")
        assert lengths.mean_tokens(soft_budget(128)) > lengths.base_mean()

    def test_unknown_pair_raises(self, model_8b):
        with pytest.raises(KeyError):
            LengthModel(model_8b, "math500").base_mean()


class TestFallbackRules:
    def test_hard_fallback_below_budget(self, lengths_8b):
        mean = lengths_8b.mean_tokens(hard_budget(512))
        assert mean < 512
        assert not lengths_8b.has_measurement(hard_budget(512))

    def test_hard_fallback_capped_by_base(self, lengths_8b):
        mean = lengths_8b.mean_tokens(hard_budget(10_000))
        assert mean == lengths_8b.base_mean()

    def test_l1_conservatism(self, lengths_l1):
        # L1 massively under-uses its budget (paper: <50 tokens at 256).
        mean = lengths_l1.mean_tokens(hard_budget(512))
        assert mean < 0.2 * 512

    def test_l1_never_exceeds_tiny_budget(self, lengths_l1):
        assert lengths_l1.mean_tokens(hard_budget(16)) <= 16

    def test_soft_fallback_interpolates(self, lengths_8b):
        mean = lengths_8b.mean_tokens(soft_budget(192))
        low = lengths_8b.mean_tokens(soft_budget(128))
        high = lengths_8b.mean_tokens(soft_budget(256))
        assert min(low, high) <= mean <= max(low, high)

    def test_nr_fallback(self):
        lengths = LengthModel(get_model("deepscaler-1.5b"), "mmlu-redux")
        mean = lengths.mean_tokens(nr_control())
        assert mean == pytest.approx(0.28 * lengths.base_mean())


class TestSampling:
    def test_sample_mean_tracks_target(self, lengths_8b, rng):
        samples = lengths_8b.sample(base_control(), rng, size=20_000)
        assert samples.mean() == pytest.approx(811.1, rel=0.03)

    def test_samples_are_positive_ints(self, lengths_8b, rng):
        samples = lengths_8b.sample(hard_budget(128), rng, size=100)
        assert samples.dtype.kind == "i"
        assert (samples >= 4).all()

    def test_scalar_sample(self, lengths_8b, rng):
        assert isinstance(lengths_8b.sample(base_control(), rng), int)

    def test_latent_transform_monotone(self, lengths_8b):
        lengths = lengths_8b.sample_with_latent(
            base_control(), np.array([-1.0, 0.0, 1.0]))
        assert lengths[0] < lengths[1] < lengths[2]

    def test_plan_caps_hard_budgets(self, lengths_8b, rng):
        plan = lengths_8b.plan(hard_budget(128), rng, size=10)
        assert plan.max_new_tokens == 128 + 12

    def test_plan_uses_default_cap_otherwise(self, lengths_8b, rng):
        plan = lengths_8b.plan(base_control(), rng, size=10)
        assert plan.max_new_tokens == DEFAULT_MAX_TOKENS


class TestTruncationProbability:
    def test_hard_small_budget_almost_always_truncates(self, lengths_8b):
        assert lengths_8b.truncation_probability(hard_budget(128)) > 0.95

    def test_hard_generous_budget_rarely_truncates(self, lengths_8b):
        assert lengths_8b.truncation_probability(hard_budget(4096)) < 0.05

    def test_base_never_truncates(self, lengths_8b):
        assert lengths_8b.truncation_probability(base_control()) < 0.01

    def test_monotone_in_budget(self, lengths_8b):
        probs = [lengths_8b.truncation_probability(hard_budget(b))
                 for b in (64, 128, 256, 512, 1024)]
        assert probs == sorted(probs, reverse=True)
