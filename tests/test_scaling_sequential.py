"""Tests for sequential scaling and the parallel-scaling curve."""

import numpy as np
import pytest

from repro.models.capability import AccuracyCurve, AnchorPoint, capability_profile
from repro.scaling.parallel import parallel_scaling_curve
from repro.scaling.sequential import (
    diminishing_returns_threshold,
    marginal_gain_per_token,
    sequential_scaling_curve,
)


@pytest.fixture()
def saturating_curve():
    return AccuracyCurve([
        AnchorPoint(32, 0.25), AnchorPoint(128, 0.45), AnchorPoint(400, 0.60),
        AnchorPoint(1600, 0.62),
    ])


class TestSequentialCurve:
    def test_points_follow_curve(self, saturating_curve):
        points = sequential_scaling_curve(
            saturating_curve, [64, 256, 1024], latency_fn=lambda o: 0.1 * o)
        assert [p.budget for p in points] == [64, 256, 1024]
        assert points[0].accuracy < points[1].accuracy < points[2].accuracy
        assert points[2].latency_seconds == pytest.approx(102.4)

    def test_rejects_bad_budget(self, saturating_curve):
        with pytest.raises(ValueError):
            sequential_scaling_curve(saturating_curve, [0],
                                     latency_fn=lambda o: o)

    def test_marginal_gain_decreases(self, saturating_curve):
        early = marginal_gain_per_token(saturating_curve, 100)
        late = marginal_gain_per_token(saturating_curve, 1200)
        assert early > late

    def test_marginal_gain_rejects_tiny_tokens(self, saturating_curve):
        with pytest.raises(ValueError):
            marginal_gain_per_token(saturating_curve, 4)

    def test_diminishing_returns_threshold_in_range(self, saturating_curve):
        threshold = diminishing_returns_threshold(saturating_curve)
        assert 32 < threshold <= 1600

    def test_paper_inflection_points(self):
        # Section V-C: diminishing returns around a few hundred tokens.
        profile = capability_profile("dsr1-qwen-14b", "mmlu-redux")
        threshold = diminishing_returns_threshold(profile.completed)
        assert 150 < threshold < 1400


class TestParallelScalingCurve:
    def test_points_per_scale_factor(self, engine_1p5b, rng):
        p = np.full(200, 0.4)
        w = np.full(200, 0.3)
        points = parallel_scaling_curve(
            engine_1p5b, p, w, 4, scale_factors=(1, 4, 16),
            output_budget=128, prompt_tokens=150, rng=rng,
        )
        assert [pt.scale_factor for pt in points] == [1, 4, 16]

    def test_latency_monotone_in_sf(self, engine_1p5b, rng):
        points = parallel_scaling_curve(
            engine_1p5b, np.full(100, 0.4), np.full(100, 0.3), 4,
            scale_factors=(1, 8, 64), output_budget=128,
            prompt_tokens=150, rng=rng,
        )
        latencies = [pt.decode_seconds for pt in points]
        assert latencies == sorted(latencies)

    def test_energy_monotone_in_sf(self, engine_1p5b, rng):
        points = parallel_scaling_curve(
            engine_1p5b, np.full(100, 0.4), np.full(100, 0.3), 4,
            scale_factors=(1, 8, 64), output_budget=128,
            prompt_tokens=150, rng=rng,
        )
        energies = [pt.energy_per_question_j for pt in points]
        assert energies == sorted(energies)

    def test_rejects_bad_scale_factor(self, engine_1p5b, rng):
        with pytest.raises(ValueError):
            parallel_scaling_curve(
                engine_1p5b, np.full(10, 0.4), np.full(10, 0.3), 4,
                scale_factors=(0,), output_budget=128,
                prompt_tokens=150, rng=rng,
            )
