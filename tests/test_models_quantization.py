"""Tests for the W4A16 AWQ quantization transform."""

import pytest

from repro.models.quantization import (
    AWQ_BITS_PER_WEIGHT,
    awq_w4_quantize,
    compression_ratio,
)
from repro.models.registry import get_model


class TestAwqTransform:
    def test_name_and_label(self, model_8b):
        quantized = awq_w4_quantize(model_8b)
        assert quantized.name == "dsr1-llama-8b-awq-w4"
        assert "AWQ-W4" in quantized.display_name

    def test_compression_below_4x(self, model_8b):
        # The FP16 LM head and scales keep compression below the naive 4x.
        quantized = awq_w4_quantize(model_8b)
        ratio = compression_ratio(quantized)
        assert 2.5 < ratio < 4.0

    def test_weight_bytes_shrink(self, model_8b):
        quantized = awq_w4_quantize(model_8b)
        assert quantized.weight_bytes < model_8b.weight_bytes / 2.5

    def test_kv_cache_unchanged(self, model_8b):
        # W4A16 leaves activations (and KV) in 16-bit.
        quantized = awq_w4_quantize(model_8b)
        assert quantized.kv_bytes_per_token == model_8b.kv_bytes_per_token

    def test_int8_compute_fallback(self, model_8b):
        # Ampere has no INT4 tensor cores; compute falls back to INT8.
        assert awq_w4_quantize(model_8b).compute_dtype == "int8"

    def test_param_count_unchanged(self, model_8b):
        assert awq_w4_quantize(model_8b).param_count == model_8b.param_count

    def test_calibration_key_switches(self, model_8b):
        assert awq_w4_quantize(model_8b).calibration_key == "awq-8b"

    def test_double_quantize_rejected(self, model_8b):
        quantized = awq_w4_quantize(model_8b)
        with pytest.raises(ValueError, match="already quantized"):
            awq_w4_quantize(quantized)

    def test_compression_ratio_requires_quantized(self, model_8b):
        with pytest.raises(ValueError):
            compression_ratio(model_8b)

    def test_bits_per_weight_includes_scales(self):
        assert AWQ_BITS_PER_WEIGHT > 4.0

    def test_tied_model_keeps_fp16_head_share(self, model_1p5b):
        # The 1.5B's tied (large) vocab head stays FP16, so its blended
        # byte rate is higher than the 8B's.
        q_small = awq_w4_quantize(model_1p5b)
        q_large = awq_w4_quantize(get_model("dsr1-qwen-14b"))
        assert q_small.weight_bytes_per_param > q_large.weight_bytes_per_param


class TestRegistryAwqVariants:
    def test_registry_variant_matches_transform(self, model_8b):
        registered = get_model("dsr1-llama-8b-awq-w4")
        rebuilt = awq_w4_quantize(model_8b)
        assert registered.weight_bytes == pytest.approx(rebuilt.weight_bytes)
        assert registered.calibration_key == rebuilt.calibration_key

    def test_quantized_decode_speedup_2_to_3x(self):
        # Table XIX: quantization speeds decode 2-3x, not the naive 4x.
        from repro.engine.engine import InferenceEngine
        fp16 = InferenceEngine(get_model("dsr1-llama-8b"))
        awq = InferenceEngine(get_model("dsr1-llama-8b-awq-w4"))
        tbt_fp16 = fp16.kernels.mean_tbt(fp16.profile, 512)
        tbt_awq = awq.kernels.mean_tbt(awq.profile, 512)
        assert 2.0 < tbt_fp16 / tbt_awq < 3.5
