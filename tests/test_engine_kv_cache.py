"""Tests for the paged KV cache."""

import pytest

from repro.engine.kv_cache import KVCacheConfig, KVCacheExhausted, PagedKVCache


@pytest.fixture()
def cache():
    # 100 blocks of 16 tokens at 1000 bytes/token.
    return PagedKVCache(KVCacheConfig(
        bytes_per_token=1000.0, capacity_bytes=100 * 16 * 1000.0,
    ))


class TestGeometry:
    def test_total_blocks(self, cache):
        assert cache.config.total_blocks == 100

    def test_blocks_for(self, cache):
        assert cache.blocks_for(0) == 0
        assert cache.blocks_for(1) == 1
        assert cache.blocks_for(16) == 1
        assert cache.blocks_for(17) == 2

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            PagedKVCache(KVCacheConfig(bytes_per_token=0, capacity_bytes=100))
        with pytest.raises(ValueError):
            PagedKVCache(KVCacheConfig(bytes_per_token=1, capacity_bytes=100,
                                       block_tokens=0))


class TestAllocation:
    def test_allocate_and_release(self, cache):
        cache.allocate_sequence(1, 100)
        assert cache.used_blocks == cache.blocks_for(100)
        cache.release_sequence(1)
        assert cache.used_blocks == 0

    def test_duplicate_sequence_rejected(self, cache):
        cache.allocate_sequence(1, 10)
        with pytest.raises(ValueError):
            cache.allocate_sequence(1, 10)

    def test_exhaustion(self, cache):
        cache.allocate_sequence(1, 100 * 16)
        with pytest.raises(KVCacheExhausted):
            cache.allocate_sequence(2, 16)

    def test_release_unknown_is_noop(self, cache):
        cache.release_sequence(99)
        assert cache.used_blocks == 0

    def test_used_bytes(self, cache):
        cache.allocate_sequence(1, 32)
        assert cache.used_bytes == pytest.approx(2 * 16 * 1000.0)


class TestGrowth:
    def test_append_within_block_is_free(self, cache):
        cache.allocate_sequence(1, 10)
        before = cache.used_blocks
        cache.append_token(1)
        assert cache.used_blocks == before

    def test_append_across_block_boundary(self, cache):
        cache.allocate_sequence(1, 16)
        before = cache.used_blocks
        cache.append_token(1)
        assert cache.used_blocks == before + 1

    def test_append_unknown_raises(self, cache):
        with pytest.raises(KeyError):
            cache.append_token(7)

    def test_bulk_extend_matches_appends(self, cache):
        cache.allocate_sequence(1, 10)
        cache.allocate_sequence(2, 10)
        cache.extend(1, 100)
        for _ in range(100):
            cache.append_token(2)
        assert cache.blocks_for(cache.sequence_tokens(1)) == cache.blocks_for(
            cache.sequence_tokens(2))

    def test_extend_exhaustion(self, cache):
        cache.allocate_sequence(1, 16)
        with pytest.raises(KVCacheExhausted):
            cache.extend(1, 101 * 16)

    def test_extend_negative_rejected(self, cache):
        cache.allocate_sequence(1, 16)
        with pytest.raises(ValueError):
            cache.extend(1, -1)

    def test_append_when_full_raises(self, cache):
        cache.allocate_sequence(1, 100 * 16)
        with pytest.raises(KVCacheExhausted):
            cache.append_token(1)


class TestCapacityPlanning:
    def test_max_sequences(self, cache):
        # 100 blocks, each 640-token sequence needs 40 blocks -> 2 fit.
        assert cache.max_sequences(640) == 2

    def test_max_sequences_tiny_context(self, cache):
        assert cache.max_sequences(1) == 100

    def test_release_returns_capacity(self, cache):
        cache.allocate_sequence(1, 640)
        cache.allocate_sequence(2, 640)
        cache.release_sequence(1)
        cache.allocate_sequence(3, 640)  # must not raise
        assert cache.used_blocks == 80
