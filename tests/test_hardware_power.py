"""Tests for the power model (Eqns. 4 and 6 behaviour)."""

import numpy as np
import pytest

from repro.hardware.calibration import calibration_for_model
from repro.hardware.power import PowerModel


@pytest.fixture()
def power_1p5b(orin):
    calib = calibration_for_model("fp16-1.5b")
    return PowerModel(orin, calib.power)


@pytest.fixture()
def power_14b(orin):
    calib = calibration_for_model("fp16-14b")
    return PowerModel(orin, calib.power)


class TestPrefillPower:
    def test_1p5b_constant_regardless_of_length(self, power_1p5b):
        # Table XX: the 1.5B prefill power is constant (~5.6 W).
        p_small = power_1p5b.prefill_power(64)
        p_large = power_1p5b.prefill_power(4096)
        assert p_small == pytest.approx(p_large)
        assert 4.0 < p_small < 7.5

    def test_8b_grows_logarithmically_above_threshold(self, power_8b):
        below = power_8b.prefill_power(512)
        above = power_8b.prefill_power(4096)
        assert above > below

    def test_8b_constant_below_threshold(self, power_8b):
        # Table XX: log regime above I=800 for the 8B model.
        assert power_8b.prefill_power(100) == pytest.approx(
            power_8b.prefill_power(700))

    def test_8b_exceeds_20w_at_4k(self, power_8b):
        # Fig. 4a: 8B/14B reach over 20 W at 4K input length.
        assert power_8b.prefill_power(4096) > 20.0

    def test_never_exceeds_envelope(self, power_14b, orin):
        assert power_14b.prefill_power(10**6) <= orin.power_cap_w

    def test_vector_matches_scalar(self, power_8b):
        lens = np.array([64, 512, 1024, 4096])
        vector = power_8b.prefill_power_vector(lens)
        scalars = [power_8b.prefill_power(int(n)) for n in lens]
        assert np.allclose(vector, scalars)


class TestDecodePower:
    def test_plateau_below_64_tokens(self, power_8b):
        # Eqn. 6: ~5.9 W for O < 64.
        plateau = power_8b.decode_power(16.0)
        assert plateau == pytest.approx(power_8b.decode_power(63.0))
        assert 4.0 < plateau < 8.0

    def test_log_growth_above_plateau(self, power_8b):
        p128 = power_8b.decode_power(128.0)
        p512 = power_8b.decode_power(512.0)
        p2048 = power_8b.decode_power(2048.0)
        assert p128 < p512 < p2048
        # Log shape: equal multiplicative steps give similar increments.
        assert (p512 - p128) == pytest.approx(p2048 - p512, rel=0.5)

    def test_8b_base_point(self, power_8b):
        # Table XIX: ~24 W at the O=512 reference.
        assert power_8b.decode_power(512.0) == pytest.approx(24.0, abs=2.0)

    def test_batch_increases_power(self, power_8b):
        single = power_8b.decode_power(128.0, batch=1)
        batched = power_8b.decode_power(128.0, batch=32)
        assert batched > single

    def test_batch_headroom_saturates(self, power_8b):
        p32 = power_8b.decode_power(128.0, batch=32)
        p64 = power_8b.decode_power(128.0, batch=64)
        p2 = power_8b.decode_power(128.0, batch=2)
        assert p64 - p32 < p32 - p2

    def test_fig10c_power_band(self, power_1p5b, power_14b):
        # Fig. 10c: 1.5B rises toward ~25 W, larger models toward ~35 W.
        assert power_1p5b.decode_power(128.0, batch=32) < 30.0
        assert power_14b.decode_power(128.0, batch=32) >= 25.0

    def test_vectorized_over_steps(self, power_8b):
        generated = np.arange(1, 300, dtype=float)
        powers = np.asarray(power_8b.decode_power(generated))
        assert powers.shape == generated.shape
        assert (powers > 0).all()

    def test_quantized_to_power_states(self, power_8b):
        step = power_8b.calibration.state_step_w
        value = power_8b.decode_power(512.0)
        assert value % step == pytest.approx(0.0, abs=1e-9)


class TestNoiseAndStates:
    def test_noise_is_reproducible(self, orin):
        calib = calibration_for_model("fp16-8b")
        a = PowerModel(orin, calib.power, noise_std=0.02, seed=42)
        b = PowerModel(orin, calib.power, noise_std=0.02, seed=42)
        assert a.prefill_power(1024) == b.prefill_power(1024)

    def test_noise_varies_between_calls(self, orin):
        calib = calibration_for_model("fp16-8b")
        model = PowerModel(orin, calib.power, noise_std=0.05, seed=0)
        values = {model.prefill_power(1024) for _ in range(8)}
        assert len(values) > 1

    def test_power_states_enumeration(self, power_8b, orin):
        states = power_8b.power_states()
        assert states[0].watts == pytest.approx(orin.idle_power_w)
        assert states[-1].watts <= orin.power_cap_w + power_8b.calibration.state_step_w
        watts = [s.watts for s in states]
        assert watts == sorted(watts)

    def test_gpu_busy_linear_in_batch(self, power_8b):
        # Fig. 10c: utilization rises linearly with scale factor.
        b1 = power_8b.gpu_busy_fraction(1)
        b4 = power_8b.gpu_busy_fraction(4)
        assert b4 == pytest.approx(4 * b1)

    def test_gpu_busy_saturates_at_one(self, power_8b):
        assert power_8b.gpu_busy_fraction(10_000) == 1.0

    def test_idle_power(self, power_8b, orin):
        assert power_8b.idle_power() == orin.idle_power_w
