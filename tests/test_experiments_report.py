"""Tests for the Table/Series/Figure report containers."""

import pytest

from repro.experiments.report import Figure, Series, Table


class TestTable:
    def test_add_and_render(self):
        table = Table("T", ["a", "b"])
        table.add_row(1, 2.5)
        text = table.to_text()
        assert "T" in text
        assert "a" in text and "b" in text
        assert "2.5" in text

    def test_row_width_checked(self):
        table = Table("T", ["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_column_extraction(self):
        table = Table("T", ["a", "b"])
        table.add_row(1, 2)
        table.add_row(3, 4)
        assert table.column("b") == [2, 4]

    def test_unknown_column(self):
        with pytest.raises(ValueError):
            Table("T", ["a"]).column("z")

    def test_empty_table_renders(self):
        assert "T" in Table("T", ["a"]).to_text()

    def test_float_formatting(self):
        table = Table("T", ["x"])
        table.add_row(0.000123)
        table.add_row(1234567.0)
        text = table.to_text()
        assert "0.000123" in text


class TestSeries:
    def test_length_checked(self):
        with pytest.raises(ValueError):
            Series("s", (1.0, 2.0), (1.0,))

    def test_render(self):
        series = Series("s", (1.0, 2.0), (3.0, 4.0))
        text = series.to_text("x", "y")
        assert "s" in text and "x=" in text


class TestFigure:
    def test_add_and_render(self):
        figure = Figure("F", "x", "y")
        figure.add(Series("s1", (1.0,), (2.0,)))
        text = figure.to_text()
        assert "F" in text and "s1" in text

    def test_to_chart_delegates(self):
        figure = Figure("F", "x", "y")
        figure.add(Series("s1", (1.0, 2.0), (2.0, 4.0)))
        chart = figure.to_chart(width=20, height=6)
        assert "F" in chart and "|" in chart
