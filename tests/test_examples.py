"""Smoke tests: every example script runs end-to-end.

Each example's ``main()`` is imported and executed; the assertions check
the narrative-carrying lines appear so a broken example cannot silently
print garbage.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def _run_example(name: str, capsys) -> str:
    spec = importlib.util.spec_from_file_location(name, EXAMPLES / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    sys.modules[name] = module
    try:
        spec.loader.exec_module(module)
        module.main()
    finally:
        sys.modules.pop(name, None)
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, capsys):
        out = _run_example("quickstart", capsys)
        assert "decode share" in out
        assert "reasoning tokens" in out

    def test_fleet_cost_analysis(self, capsys):
        out = _run_example("fleet_cost_analysis", capsys)
        assert "Jetson Orin, batch 30" in out
        assert "o1-preview" in out

    def test_optimization_advisor(self, capsys):
        out = _run_example("optimization_advisor", capsys)
        assert "speculative decoding" in out
        assert "Verdict" in out

    def test_interactive_latency(self, capsys):
        out = _run_example("interactive_latency", capsys)
        assert "TTFT" in out
        assert "speculative decoding" in out

    @pytest.mark.slow
    def test_token_budget_tuning(self, capsys):
        out = _run_example("token_budget_tuning", capsys)
        assert "Best sequential config" in out
        assert "Parallel champion" in out

    @pytest.mark.slow
    def test_assistive_robot(self, capsys):
        out = _run_example("assistive_robot", capsys)
        assert "Plan my weekly schedule" in out
        assert "configuration" in out
