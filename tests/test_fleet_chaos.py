"""Fleet chaos: seeded device kills, evacuation, and the recovery gate."""

import pytest

from repro.experiments.resilience import (
    FleetChaosResult,
    fleet_chaos_table,
    run_fleet_chaos_study,
)
from repro.faults import DeviceFault, FleetFaultConfig, FleetFaultSchedule


class TestFleetFaultSchedule:
    def test_same_seed_reproduces_the_schedule(self):
        names = ["edge-00", "edge-01", "edge-02"]
        a = FleetFaultSchedule(names, seed=3)
        b = FleetFaultSchedule(names, seed=3)
        assert a.events == b.events

    def test_schedule_ignores_name_order(self):
        names = ["edge-00", "edge-01", "edge-02"]
        a = FleetFaultSchedule(names, seed=3)
        b = FleetFaultSchedule(list(reversed(names)), seed=3)
        assert a.events == b.events

    def test_crashes_land_inside_the_window(self):
        config = FleetFaultConfig(horizon_s=100.0, device_crashes=5,
                                  crash_window=(0.2, 0.6))
        schedule = FleetFaultSchedule(["a", "b"], config, seed=0)
        crashes = schedule.crashes()
        assert len(crashes) == 5
        for fault in crashes:
            assert 20.0 <= fault.start_s <= 60.0

    def test_rejects_duplicate_names(self):
        with pytest.raises(ValueError):
            FleetFaultSchedule(["a", "a"])

    def test_injector_only_for_browned_out_devices(self):
        config = FleetFaultConfig(device_crashes=0, brownouts=1)
        schedule = FleetFaultSchedule(["a"], config, seed=0)
        assert schedule.injector_for("a") is not None
        clean = FleetFaultSchedule(["a"], FleetFaultConfig(), seed=0)
        assert clean.injector_for("a") is None

    def test_config_validation(self):
        with pytest.raises(ValueError):
            FleetFaultConfig(horizon_s=0.0)
        with pytest.raises(ValueError):
            FleetFaultConfig(crash_window=(0.8, 0.2))
        with pytest.raises(ValueError):
            DeviceFault(device="a", kind="meteor", start_s=0.0,
                        duration_s=1.0)


class TestRecoveryGate:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fleet_chaos_study(devices=4, kill=2, seed=0)

    def test_kills_are_actually_delivered(self, result):
        assert result.killed == 2

    def test_crashes_orphan_and_reroute_work(self, result):
        assert result.evacuated > 0
        assert result.rerouted == result.evacuated

    def test_no_request_is_lost(self, result):
        assert result.lost == 0
        assert result.completed == result.offered == 60

    def test_rerun_is_byte_identical(self, result):
        assert result.rerun_identical

    def test_gate_passes(self, result):
        assert result.recovery_ok

    def test_gate_rejects_vacuous_runs(self, result):
        vacuous = FleetChaosResult(
            devices=4, kill=0, offered=10, completed=10, shed=0,
            failed=0, lost=0, killed=0, evacuated=0, rerouted=0,
            deadline_hit_rate=1.0, p95_latency_s=1.0,
            rerun_identical=True)
        assert not vacuous.recovery_ok

    def test_gate_rejects_lost_requests(self, result):
        lossy = FleetChaosResult(
            devices=4, kill=2, offered=10, completed=9, shed=0,
            failed=0, lost=1, killed=2, evacuated=3, rerouted=3,
            deadline_hit_rate=1.0, p95_latency_s=1.0,
            rerun_identical=True)
        assert not lossy.recovery_ok

    def test_table_renders(self, result):
        text = fleet_chaos_table(result).to_text()
        assert "rerun byte-identical" in text
        assert "yes" in text


class TestSeedSensitivity:
    def test_another_seed_also_recovers(self):
        result = run_fleet_chaos_study(devices=4, kill=2, seed=1)
        assert result.recovery_ok
        assert result.killed == 2
