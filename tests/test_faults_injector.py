"""Tests for the seeded fault-event scheduler."""


import pytest

from repro.faults.injector import (
    MIN_SPEED_FACTOR,
    FaultEvent,
    FaultInjector,
    FaultKind,
    FaultScheduleConfig,
)


def _config(**overrides) -> FaultScheduleConfig:
    base = dict(horizon_s=100.0, thermal_episodes=2, dvfs_drops=1,
                transient_slowdowns=3, kv_pressure_spikes=1,
                abort_rate=0.2)
    base.update(overrides)
    return FaultScheduleConfig(**base)


class TestFaultEvent:
    def test_interval_semantics(self):
        event = FaultEvent(FaultKind.THERMAL, 10.0, 5.0, 0.6)
        assert event.end_s == 15.0
        assert event.active_at(10.0)          # closed at the start
        assert event.active_at(14.999)
        assert not event.active_at(15.0)      # open at the end
        assert not event.active_at(9.999)


class TestScheduleConfig:
    @pytest.mark.parametrize("kwargs", [
        {"horizon_s": 0.0},
        {"thermal_speed": 0.0},
        {"dvfs_speed": 1.5},
        {"kv_pressure_fraction": -0.1},
        {"abort_rate": 1.2},
    ])
    def test_bad_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            _config(**kwargs)


class TestFaultInjector:
    def test_schedule_matches_config_counts(self):
        injector = FaultInjector(_config(), seed=3)
        by_kind = {}
        for event in injector.events:
            by_kind[event.kind] = by_kind.get(event.kind, 0) + 1
        assert by_kind[FaultKind.THERMAL] == 2
        assert by_kind[FaultKind.DVFS] == 1
        assert by_kind[FaultKind.TRANSIENT] == 3
        assert by_kind[FaultKind.KV_PRESSURE] == 1

    def test_events_start_inside_horizon_sorted(self):
        injector = FaultInjector(_config(), seed=5)
        starts = [e.start_s for e in injector.events]
        assert starts == sorted(starts)
        assert all(0.0 <= s < 100.0 for s in starts)

    def test_same_seed_same_schedule(self):
        a = FaultInjector(_config(), seed=11)
        b = FaultInjector(_config(), seed=11)
        assert a.events == b.events

    def test_different_seed_different_schedule(self):
        a = FaultInjector(_config(), seed=0)
        b = FaultInjector(_config(), seed=1)
        assert a.events != b.events

    def test_zero_counts_disable_kinds(self):
        injector = FaultInjector(_config(
            thermal_episodes=0, dvfs_drops=0, transient_slowdowns=0,
            kv_pressure_spikes=0, abort_rate=0.0), seed=0)
        assert injector.events == ()
        assert injector.speed_factor(5.0) == 1.0
        assert injector.kv_pressure_fraction(5.0) == 0.0
        assert injector.next_boundary_after(0.0) is None

    def test_speed_factor_composes_overlaps(self):
        injector = FaultInjector(_config(
            thermal_episodes=0, dvfs_drops=0, transient_slowdowns=0,
            kv_pressure_spikes=0), seed=0)
        # Inject a hand-built overlapping schedule.
        injector.events = (
            FaultEvent(FaultKind.THERMAL, 0.0, 10.0, 0.5),
            FaultEvent(FaultKind.DVFS, 5.0, 10.0, 0.5),
            FaultEvent(FaultKind.KV_PRESSURE, 0.0, 20.0, 0.9),
        )
        assert injector.speed_factor(2.0) == pytest.approx(0.5)
        assert injector.speed_factor(7.0) == pytest.approx(0.25)
        assert injector.speed_factor(12.0) == pytest.approx(0.5)
        assert injector.speed_factor(25.0) == 1.0
        # KV pressure never slows clocks.
        assert injector.kv_pressure_fraction(2.0) == pytest.approx(0.9)

    def test_speed_factor_floor(self):
        injector = FaultInjector(_config(
            thermal_episodes=0, dvfs_drops=0, transient_slowdowns=0,
            kv_pressure_spikes=0), seed=0)
        injector.events = tuple(
            FaultEvent(FaultKind.TRANSIENT, 0.0, 10.0, 0.1)
            for _ in range(5))
        assert injector.speed_factor(1.0) == MIN_SPEED_FACTOR

    def test_abort_deterministic_and_first_attempt_only(self):
        injector = FaultInjector(_config(abort_rate=0.3), seed=7)
        decisions = [injector.should_abort(i, 1) for i in range(200)]
        assert decisions == [injector.should_abort(i, 1) for i in range(200)]
        assert any(decisions)
        assert not all(decisions)
        aborted = decisions.index(True)
        assert not injector.should_abort(aborted, 2)   # retry recovers

    def test_abort_rate_zero_never_aborts(self):
        injector = FaultInjector(_config(abort_rate=0.0), seed=7)
        assert not any(injector.should_abort(i, 1) for i in range(100))

    def test_abort_rate_tracks_probability(self):
        injector = FaultInjector(_config(abort_rate=0.25), seed=13)
        hits = sum(injector.should_abort(i, 1) for i in range(4000))
        assert 0.2 < hits / 4000 < 0.3

    def test_next_boundary_walks_schedule(self):
        injector = FaultInjector(_config(), seed=2)
        t, seen = -1.0, 0
        while (boundary := injector.next_boundary_after(t)) is not None:
            assert boundary > t
            t, seen = boundary, seen + 1
        # Every event contributes a start and an end (some may coincide).
        assert seen >= len(injector.events)
        assert t == pytest.approx(max(e.end_s for e in injector.events))
