"""Property tests: fleet determinism under reordering and executors."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.fleet import ROUTING_POLICIES, FleetGateway, build_fleet, poisson_stream


def _fleet_json(order, policy="latency-aware", seed=0, faults_seed=None):
    from repro.faults.injector import FleetFaultConfig, FleetFaultSchedule

    fleet = build_fleet(4, mix="balanced")
    fleet = [fleet[i] for i in order]
    schedule = None
    if faults_seed is not None:
        schedule = FleetFaultSchedule(
            [device.name for device in fleet],
            FleetFaultConfig(horizon_s=8.0, device_crashes=1,
                             crash_duration_s=(4.0, 8.0)),
            seed=faults_seed)
    gateway = FleetGateway(fleet, policy=policy, faults=schedule)
    stream = poisson_stream(np.random.default_rng(seed), 6.0, 20,
                            deadline_s=30.0)
    return gateway.run(stream).to_json()


class TestDeviceOrderInvariance:
    @settings(max_examples=8, deadline=None)
    @given(order=st.permutations(range(4)))
    def test_construction_order_never_changes_the_report(self, order):
        assert _fleet_json(list(order)) == _fleet_json([0, 1, 2, 3])

    @settings(max_examples=6, deadline=None)
    @given(order=st.permutations(range(4)))
    def test_order_invariance_holds_under_crashes(self, order):
        assert (_fleet_json(list(order), faults_seed=7)
                == _fleet_json([0, 1, 2, 3], faults_seed=7))

    @pytest.mark.parametrize("policy", ROUTING_POLICIES)
    def test_every_policy_is_order_invariant(self, policy):
        assert (_fleet_json([3, 1, 0, 2], policy=policy)
                == _fleet_json([0, 1, 2, 3], policy=policy))


class TestSeededConservation:
    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**16))
    def test_no_request_is_ever_lost(self, seed):
        fleet = build_fleet(3, mix="balanced")
        gateway = FleetGateway(fleet, policy="least-outstanding")
        stream = poisson_stream(np.random.default_rng(seed), 8.0, 15)
        report = gateway.run(stream)
        assert report.lost == 0
        assert report.completed == 15

    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**16))
    def test_chaos_conserves_requests_for_any_seed(self, seed):
        from repro.experiments.resilience import run_fleet_chaos_study

        result = run_fleet_chaos_study(devices=3, kill=1, qps=8.0,
                                       num_requests=20, seed=seed)
        assert result.lost == 0
        assert result.rerun_identical


class TestPipelineExecutorIdentity:
    """The fleet artifact is byte-identical through any executor."""

    def _artifact_text(self, jobs, executor):
        from repro.pipeline.runner import run_pipeline

        result = run_pipeline(("fleet",), smoke=True, jobs=jobs,
                              executor=executor)
        return result.outputs["fleet"].to_text()

    @pytest.fixture(scope="class")
    def reference(self):
        return self._artifact_text(jobs=1, executor="thread")

    def test_parallel_thread_sweep_matches(self, reference):
        assert self._artifact_text(jobs=4, executor="thread") == reference

    def test_process_executor_matches(self, reference):
        assert self._artifact_text(jobs=2, executor="process") == reference

    def test_reference_mentions_every_policy(self, reference):
        for policy in ROUTING_POLICIES:
            assert policy in reference
