"""Tests for the cost model and Pareto utilities."""

from dataclasses import dataclass

import pytest

from repro.core.cost import (
    CloudPricing,
    CostModel,
    o1_preview_pricing,
    o4_mini_pricing,
)
from repro.core.pareto import dominates, operational_regimes, pareto_frontier


class TestCostModel:
    def test_energy_cost(self):
        model = CostModel()
        assert model.energy_cost_usd(3.6e6) == pytest.approx(0.15)

    def test_hardware_cost(self):
        model = CostModel()
        assert model.hardware_cost_usd(7200.0) == pytest.approx(0.09)

    def test_table3_batch1_scenario(self):
        # 195,624 tokens, 4358 s, 0.0317 kWh -> ~$0.302 / 1M tokens.
        model = CostModel.single_stream()
        cost = model.cost_per_million_tokens(
            energy_joules=0.0317 * 3.6e6,
            wallclock_seconds=4358.0,
            tokens=195_624,
        )
        assert cost == pytest.approx(0.302, rel=0.05)

    def test_batching_amortizes_cost(self):
        single = CostModel(serving_batch=1)
        batched = CostModel(serving_batch=30)
        args = dict(energy_joules=1e5, wallclock_seconds=400.0, tokens=1e5)
        assert (batched.cost_per_million_tokens(**args)
                == pytest.approx(single.cost_per_million_tokens(**args) / 30))

    def test_paper_serving_default(self):
        assert CostModel.paper_serving().serving_batch == 10

    def test_zero_tokens_rejected(self):
        with pytest.raises(ValueError):
            CostModel().cost_per_million_tokens(1.0, 1.0, 0)

    def test_bad_batch_rejected(self):
        with pytest.raises(ValueError):
            CostModel(serving_batch=0)


class TestCloudPricing:
    def test_o1_preview_rates(self):
        pricing = o1_preview_pricing()
        assert pricing.input_usd_per_mtok == 15.0
        assert pricing.output_usd_per_mtok == 60.0

    def test_o4_mini_cheaper(self):
        assert (o4_mini_pricing().output_usd_per_mtok
                < o1_preview_pricing().output_usd_per_mtok)

    def test_workload_cost(self):
        pricing = CloudPricing("x", 10.0, 20.0)
        assert pricing.cost_usd(1e6, 2e6) == pytest.approx(50.0)

    def test_cloud_vs_edge_gap_is_orders_of_magnitude(self):
        # Section III-B: edge runs at ~$0.30/1M vs $60/1M for o1-preview.
        edge = CostModel.single_stream().cost_per_million_tokens(
            0.0317 * 3.6e6, 4358.0, 195_624)
        assert o1_preview_pricing().output_usd_per_mtok / edge > 100


@dataclass(frozen=True)
class _Point:
    name: str
    latency: float
    accuracy: float


class TestParetoFrontier:
    def _points(self):
        return [
            _Point("a", 1.0, 0.3),
            _Point("b", 2.0, 0.2),   # dominated by a
            _Point("c", 3.0, 0.5),
            _Point("d", 10.0, 0.5),  # dominated by c
            _Point("e", 20.0, 0.8),
        ]

    def test_frontier_members(self):
        frontier = pareto_frontier(self._points(),
                                   cost=lambda p: p.latency,
                                   value=lambda p: p.accuracy)
        assert [p.name for p in frontier] == ["a", "c", "e"]

    def test_frontier_sorted_by_cost(self):
        frontier = pareto_frontier(self._points(),
                                   cost=lambda p: p.latency,
                                   value=lambda p: p.accuracy)
        latencies = [p.latency for p in frontier]
        assert latencies == sorted(latencies)

    def test_empty_input(self):
        assert pareto_frontier([], cost=lambda p: 0, value=lambda p: 0) == []

    def test_equal_cost_keeps_best(self):
        points = [_Point("a", 1.0, 0.3), _Point("b", 1.0, 0.6)]
        frontier = pareto_frontier(points, cost=lambda p: p.latency,
                                   value=lambda p: p.accuracy)
        assert [p.name for p in frontier] == ["b"]

    def test_no_frontier_member_dominated(self, rng):
        points = [_Point(str(i), float(c), float(v))
                  for i, (c, v) in enumerate(zip(rng.random(50), rng.random(50)))]
        frontier = pareto_frontier(points, cost=lambda p: p.latency,
                                   value=lambda p: p.accuracy)
        for member in frontier:
            for other in points:
                assert not dominates(other.latency, other.accuracy,
                                     member.latency, member.accuracy)

    def test_dominates_semantics(self):
        assert dominates(1.0, 0.5, 2.0, 0.4)
        assert not dominates(1.0, 0.5, 1.0, 0.5)  # equal: no strict edge
        assert not dominates(2.0, 0.6, 1.0, 0.5)  # costlier


class TestRegimes:
    def test_bands_pick_best(self):
        points = [_Point("fast", 2.0, 0.4), _Point("faster", 3.0, 0.45),
                  _Point("slow", 40.0, 0.8)]
        regimes = operational_regimes(points,
                                      latency=lambda p: p.latency,
                                      accuracy=lambda p: p.accuracy,
                                      label=lambda p: p.name)
        bands = {r.band: r.best_label for r in regimes}
        assert bands["<5s"] == "faster"
        assert bands[">30s"] == "slow"

    def test_empty_bands_skipped(self):
        points = [_Point("only", 2.0, 0.4)]
        regimes = operational_regimes(points,
                                      latency=lambda p: p.latency,
                                      accuracy=lambda p: p.accuracy,
                                      label=lambda p: p.name)
        assert len(regimes) == 1
