"""Tests for the online deadline-aware decoding controller."""

import numpy as np
import pytest

from repro.core.characterize import characterize_model
from repro.core.controller import DeadlineController, static_budget_baseline
from repro.models.registry import get_model


@pytest.fixture(scope="module")
def setup(engine_8b):
    latency = characterize_model(get_model("dsr1-llama-8b"),
                                 power_samples=1).latency
    controller = DeadlineController(latency)
    return controller, engine_8b, latency


class TestSingleGeneration:
    def test_meets_deadline(self, setup):
        controller, engine, _ = setup
        for deadline in (2.0, 10.0, 60.0):
            result = controller.run(engine, prompt_tokens=150,
                                    natural_thinking_tokens=800,
                                    deadline_s=deadline)
            assert result.met_deadline, deadline

    def test_no_intervention_with_generous_deadline(self, setup):
        controller, engine, _ = setup
        result = controller.run(engine, 150, 200, deadline_s=600.0)
        assert not result.intervened
        assert result.thinking_tokens == 200

    def test_intervenes_under_tight_deadline(self, setup):
        controller, engine, _ = setup
        result = controller.run(engine, 150, 800, deadline_s=10.0)
        assert result.intervened
        assert result.thinking_tokens < 800

    def test_more_deadline_more_thinking(self, setup):
        controller, engine, _ = setup
        short = controller.run(engine, 150, 800, deadline_s=10.0)
        long = controller.run(engine, 150, 800, deadline_s=40.0)
        assert long.thinking_tokens > short.thinking_tokens

    def test_answer_always_emitted(self, setup):
        controller, engine, _ = setup
        result = controller.run(engine, 150, 800, deadline_s=2.0)
        assert result.answer_tokens == controller.answer_tokens

    def test_rejects_bad_deadline(self, setup):
        controller, engine, _ = setup
        with pytest.raises(ValueError):
            controller.run(engine, 150, 100, deadline_s=0.0)

    def test_constructor_validation(self, setup):
        _, _, latency = setup
        with pytest.raises(ValueError):
            DeadlineController(latency, answer_tokens=0)
        with pytest.raises(ValueError):
            DeadlineController(latency, safety_margin=0.9)


class TestAdaptivityVsStaticBudget:
    """The controller's value: deadline *guarantees* under prompt-length
    variation, at thinking parity with offline-provisioned budgets."""

    @pytest.fixture(scope="class")
    def population(self):
        rng = np.random.default_rng(11)
        prompts = np.clip(rng.lognormal(np.log(300), 0.9, 100),
                          32, 4096).astype(int)
        naturals = np.clip(rng.lognormal(np.log(700), 0.7, 100),
                           32, 4096).astype(int)
        return prompts, naturals

    def test_controller_never_misses(self, setup, population):
        controller, engine, _ = setup
        controlled = controller.batch_run(engine, *population, 30.0)
        assert all(r.met_deadline for r in controlled)

    def test_static_median_provisioning_misses_the_tail(self, setup,
                                                        population):
        # A budget provisioned at the median prompt misses deadlines on
        # long-prompt requests — the failure mode the intro warns about.
        _, engine, latency = setup
        static = static_budget_baseline(engine, latency, *population, 30.0,
                                        provisioning_quantile=0.5)
        misses = sum(not r.met_deadline for r in static)
        assert misses > 0.2 * len(static)

    def test_controller_matches_static_thinking(self, setup, population):
        # Zero misses does not cost thinking depth: the controller stays
        # within a few percent of the p95-provisioned static budget.
        controller, engine, latency = setup
        controlled = controller.batch_run(engine, *population, 30.0)
        static = static_budget_baseline(engine, latency, *population, 30.0,
                                        provisioning_quantile=0.95)
        mean_controlled = np.mean([r.thinking_tokens for r in controlled])
        mean_static = np.mean([r.thinking_tokens for r in static])
        assert mean_controlled > 0.9 * mean_static

    def test_batch_run_validates_shapes(self, setup):
        controller, engine, _ = setup
        with pytest.raises(ValueError):
            controller.batch_run(engine, np.array([100]),
                                 np.array([100, 200]), 10.0)
