"""Run journal durability: WAL replay, torn tails, crash/resume."""

import json

import pytest

from repro.core.persistence import append_jsonl_line, read_jsonl
from repro.pipeline.graph import ArtifactSpec, DependencyGraph, ProducerSpec
from repro.pipeline.journal import RunJournal, new_run_id
from repro.pipeline.runner import PipelineError, run_pipeline
from repro.pipeline.store import ArtifactStore

ARTIFACTS = ("a1", "a2", "a3", "a4", "a5", "a6")


def toy_graph() -> DependencyGraph:
    """Six artifacts over two shared producers plus the seed itself."""
    producers = {
        "base": ProducerSpec("base", lambda seed: 7 + seed),
        "grid": ProducerSpec(
            "grid", lambda seed, base: [base * i for i in range(5)],
            deps={"base": "base"}),
    }
    artifacts = {
        "a1": ArtifactSpec("a1", lambda seed, grid: f"a1:{grid}",
                           deps={"grid": "grid"}),
        "a2": ArtifactSpec("a2", lambda seed, grid: f"a2:{sum(grid)}",
                           deps={"grid": "grid"}),
        "a3": ArtifactSpec("a3", lambda seed, base: f"a3:{base * 2}",
                           deps={"base": "base"}),
        "a4": ArtifactSpec("a4", lambda seed: f"a4:{seed}"),
        "a5": ArtifactSpec("a5", lambda seed, grid: f"a5:{max(grid)}",
                           deps={"grid": "grid"}),
        "a6": ArtifactSpec("a6", lambda seed, base: f"a6:{base ** 2}",
                           deps={"base": "base"}),
    }
    return DependencyGraph(producers, artifacts)


class SimulatedCrash(RuntimeError):
    """Raised from the journal's on_commit hook to model a hard kill."""


def crash_after(journal: RunJournal, commits: int) -> None:
    """Arm the journal to die once ``commits`` commit events land."""
    seen = []

    def hook(artifact_id: str) -> None:
        seen.append(artifact_id)
        if len(seen) >= commits:
            raise SimulatedCrash(f"killed after {artifact_id}")

    journal.on_commit = hook


class TestJsonlWal:
    def test_append_and_read_round_trip(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        for i in range(3):
            append_jsonl_line(path, {"i": i})
        records, torn = read_jsonl(path)
        assert [r["i"] for r in records] == [0, 1, 2]
        assert not torn

    def test_torn_tail_detected_and_dropped(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        append_jsonl_line(path, {"i": 0})
        append_jsonl_line(path, {"i": 1})
        with path.open("ab") as fh:
            fh.write(b'{"i": 2, "tr')  # crash mid-append
        records, torn = read_jsonl(path)
        assert [r["i"] for r in records] == [0, 1]
        assert torn

    def test_missing_file_is_empty_not_torn(self, tmp_path):
        records, torn = read_jsonl(tmp_path / "absent.jsonl")
        assert records == [] and not torn


class TestJournalLifecycle:
    def test_replay_recovers_state(self, tmp_path):
        journal = RunJournal.create(tmp_path, seed=3, smoke=True,
                                    artifact_ids=("x", "y", "z"))
        journal.record_start("x")
        journal.record_commit("x", {"value": 1})
        journal.record_start("y")
        journal.record_fail("y", "ValueError", "abc123def456")
        journal.record_start("z")

        replayed = RunJournal.open(tmp_path, journal.run_id)
        assert replayed.meta == {"seed": 3, "smoke": True,
                                 "artifacts": ["x", "y", "z"]}
        assert replayed.committed_artifacts == ("x",)
        assert replayed.failed_artifacts == ("y",)
        assert replayed.in_flight_artifacts == ("z",)
        assert not replayed.torn_tail
        assert replayed.load_committed_output("x") == {"value": 1}

    def test_commit_after_fail_clears_failure(self, tmp_path):
        journal = RunJournal.create(tmp_path)
        journal.record_fail("x", "ValueError", "abc123def456")
        journal.record_commit("x", 1)
        replayed = RunJournal.open(tmp_path, journal.run_id)
        assert replayed.committed_artifacts == ("x",)
        assert replayed.failed_artifacts == ()

    def test_create_refuses_existing_run_id(self, tmp_path):
        journal = RunJournal.create(tmp_path)
        with pytest.raises(ValueError, match="already exists"):
            RunJournal.create(tmp_path, run_id=journal.run_id)

    def test_open_missing_run_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="ghost"):
            RunJournal.open(tmp_path, "ghost")

    def test_list_runs_sorted(self, tmp_path):
        assert RunJournal.list_runs(tmp_path) == ()
        ids = sorted(new_run_id() for _ in range(3))
        for run_id in ids:
            RunJournal.create(tmp_path, run_id=run_id)
        assert RunJournal.list_runs(tmp_path) == tuple(ids)

    def test_load_uncommitted_raises_keyerror(self, tmp_path):
        journal = RunJournal.create(tmp_path)
        with pytest.raises(KeyError):
            journal.load_committed_output("never")

    def test_corrupt_payload_dropped_by_verification(self, tmp_path):
        journal = RunJournal.create(tmp_path)
        journal.record_commit("x", [1, 2, 3])
        journal.record_commit("y", [4, 5, 6])
        payload = next(journal.payload_dir.glob("x.pkl"))
        payload.write_bytes(b"\x00garbage\x00")
        reopened = RunJournal.open(tmp_path, journal.run_id)
        assert reopened.verified_committed() == ("y",)
        assert reopened.corrupt_payloads == ["x"]
        # The dropped artifact now reads as uncommitted.
        assert "x" not in reopened.committed_artifacts

    def test_events_carry_run_id_and_timestamps(self, tmp_path):
        journal = RunJournal.create(tmp_path, seed=1)
        journal.record_start("x")
        lines = journal.path.read_text().splitlines()
        for line in lines:
            event = json.loads(line)
            assert event["run"] == journal.run_id
            assert event["t"] > 0


class TestPipelineResume:
    def test_full_run_then_resume_is_all_resumed(self, tmp_path):
        graph = toy_graph()
        journal = RunJournal.create(tmp_path, artifact_ids=ARTIFACTS)
        first = run_pipeline(ARTIFACTS, graph=graph, journal=journal,
                             store=ArtifactStore(cache_dir=tmp_path))
        reopened = RunJournal.open(tmp_path, journal.run_id)
        resumed = run_pipeline(ARTIFACTS, graph=graph, journal=reopened,
                               resume=True,
                               store=ArtifactStore(cache_dir=tmp_path))
        assert resumed.outputs == first.outputs
        assert set(resumed.report.resumed) == set(ARTIFACTS)
        assert all(t.status == "resumed" for t in resumed.report.timings)

    def test_resume_requires_journal(self):
        with pytest.raises(ValueError, match="journal"):
            run_pipeline(("a1",), graph=toy_graph(), resume=True)

    @pytest.mark.parametrize("jobs", [1, 4])
    @pytest.mark.parametrize("kill_after", [1, 2, 4])
    @pytest.mark.parametrize("seed", [0, 3])
    def test_crash_then_resume_byte_identical(self, tmp_path, jobs,
                                              kill_after, seed):
        """Kill a journaled run after K commits; resume must finish it.

        The resume run recomputes exactly the uncommitted artifacts and
        the union of resumed + recomputed outputs matches an
        uninterrupted run byte-for-byte — at any kill point, seed, and
        job count.
        """
        graph = toy_graph()
        reference = run_pipeline(ARTIFACTS, seed=seed, graph=graph)

        journal = RunJournal.create(tmp_path, seed=seed,
                                    artifact_ids=ARTIFACTS)
        crash_after(journal, kill_after)
        with pytest.raises(PipelineError):
            run_pipeline(ARTIFACTS, seed=seed, jobs=jobs, graph=graph,
                         journal=journal,
                         store=ArtifactStore(cache_dir=tmp_path))

        reopened = RunJournal.open(tmp_path, journal.run_id)
        committed = set(reopened.verified_committed())
        assert committed  # at least the artifact that tripped the kill
        resumed = run_pipeline(ARTIFACTS, seed=seed, jobs=jobs, graph=graph,
                               journal=reopened, resume=True,
                               store=ArtifactStore(cache_dir=tmp_path))

        assert resumed.outputs == reference.outputs
        assert tuple(resumed.outputs) == ARTIFACTS  # registry order kept
        statuses = {t.artifact: t.status for t in resumed.report.timings}
        recomputed = {a for a, s in statuses.items() if s == "built"}
        assert set(resumed.report.resumed) == committed
        assert recomputed == set(ARTIFACTS) - committed

    def test_torn_tail_resume_recomputes_torn_commit(self, tmp_path):
        graph = toy_graph()
        journal = RunJournal.create(tmp_path, artifact_ids=ARTIFACTS)
        run_pipeline(ARTIFACTS, graph=graph, journal=journal,
                     store=ArtifactStore(cache_dir=tmp_path))
        # Tear the final commit's journal line mid-write.
        raw = journal.path.read_bytes()
        lines = raw.splitlines(keepends=True)
        commit_lines = [i for i, line in enumerate(lines)
                        if b"artifact_commit" in line]
        torn = b"".join(lines[:commit_lines[-1]])
        torn += lines[commit_lines[-1]][: len(lines[commit_lines[-1]]) // 2]
        journal.path.write_bytes(torn)

        reopened = RunJournal.open(tmp_path, journal.run_id)
        assert reopened.torn_tail
        torn_artifact = json.loads(
            lines[commit_lines[-1]].decode())["artifact"]
        assert torn_artifact not in reopened.committed_artifacts

        reference = run_pipeline(ARTIFACTS, graph=graph)
        resumed = run_pipeline(ARTIFACTS, graph=graph, journal=reopened,
                               resume=True,
                               store=ArtifactStore(cache_dir=tmp_path))
        assert resumed.outputs == reference.outputs
        statuses = {t.artifact: t.status for t in resumed.report.timings}
        assert statuses[torn_artifact] == "built"

    def test_corrupt_committed_payload_recomputed_on_resume(self, tmp_path):
        graph = toy_graph()
        journal = RunJournal.create(tmp_path, artifact_ids=ARTIFACTS)
        reference = run_pipeline(ARTIFACTS, graph=graph, journal=journal,
                                 store=ArtifactStore(cache_dir=tmp_path))
        (journal.payload_dir / "a2.pkl").write_bytes(b"\x00rot\x00")

        reopened = RunJournal.open(tmp_path, journal.run_id)
        resumed = run_pipeline(ARTIFACTS, graph=graph, journal=reopened,
                               resume=True,
                               store=ArtifactStore(cache_dir=tmp_path))
        assert resumed.outputs == reference.outputs
        statuses = {t.artifact: t.status for t in resumed.report.timings}
        assert statuses["a2"] == "built"  # never trusted, recomputed
        assert sum(1 for s in statuses.values() if s == "resumed") == 5

    def test_report_carries_run_id(self, tmp_path):
        journal = RunJournal.create(tmp_path, artifact_ids=("a4",))
        result = run_pipeline(("a4",), graph=toy_graph(), journal=journal,
                              store=ArtifactStore(cache_dir=tmp_path))
        assert result.report.run_id == journal.run_id
        run_record = [r for r in result.report.to_records()
                      if r["kind"] == "run"]
        assert run_record[0]["run_id"] == journal.run_id
