"""Integration tests for the extension/ablation experiments."""

import pytest

from repro.experiments import hybrid_scaling, optimizations, power_modes, serving_study
from repro.experiments.runner import render, run_experiment


class TestServingStudy:
    @pytest.fixture(scope="class")
    def points(self):
        return serving_study.run_serving_study(
            qps_levels=(0.05, 0.2, 0.8), num_requests=40)

    def test_cost_falls_with_load(self, points):
        costs = [p.usd_per_mtok for p in points]
        assert costs == sorted(costs, reverse=True)
        assert costs[0] / costs[-1] > 3

    def test_latency_rises_with_load(self, points):
        p95 = [p.p95_latency_s for p in points]
        assert p95[-1] > p95[0]

    def test_occupancy_rises_with_load(self, points):
        occ = [p.mean_occupancy for p in points]
        assert occ == sorted(occ)

    def test_table_renders(self, points):
        assert "Serving ablation" in serving_study.serving_table(points).to_text()


class TestOptimizationTables:
    def test_speculative_table(self):
        table = optimizations.speculative_table()
        assert len(table.rows) == 12  # 2 targets x 6 gammas
        speedups = table.column("Speedup")
        assert max(speedups) > 1.3

    def test_offload_table(self):
        table = optimizations.offload_table()
        # DLA @B=1 ~ 1.0x everywhere; @512 helps.
        for row in table.rows:
            assert row[2] == pytest.approx(1.0, abs=0.05)
            assert row[3] >= 1.0

    def test_prefetch_table(self):
        table = optimizations.prefetch_table()
        for row in table.rows:
            assert row[1] >= 1.0       # prefill helped
            assert row[3] == pytest.approx(1.0, abs=0.05)  # decode not


class TestPowerModes:
    @pytest.fixture(scope="class")
    def points(self):
        return power_modes.run_power_mode_study()

    def test_all_combinations_present(self, points):
        assert len(points) == 12

    def test_maxn_fastest(self, points):
        for name in power_modes.MODELS:
            per_model = {p.mode: p for p in points if p.model == name}
            assert per_model["MAXN"].query_latency_s == min(
                p.query_latency_s for p in per_model.values())

    def test_15w_pays_meaningful_slowdown(self, points):
        for name in power_modes.MODELS:
            per_model = {p.mode: p for p in points if p.model == name}
            ratio = (per_model["15W"].query_latency_s
                     / per_model["MAXN"].query_latency_s)
            assert 1.2 < ratio < 2.2

    def test_table_renders(self, points):
        assert "Power-mode" in power_modes.power_mode_table(points).to_text()


class TestHybridScaling:
    @pytest.fixture(scope="class")
    def surface(self):
        return hybrid_scaling.run_hybrid_surface(size=600)

    def test_grid_size(self, surface):
        assert len(surface) == len(hybrid_scaling.TOKEN_BUDGETS) * len(
            hybrid_scaling.SCALE_FACTORS)

    def test_hybrid_beats_sequential_at_tight_budgets(self, surface):
        from repro.scaling.hybrid import best_under_latency, sequential_only
        hybrid = best_under_latency(surface, 20.0)
        pure = best_under_latency(sequential_only(surface), 20.0)
        assert hybrid.accuracy > pure.accuracy + 0.05

    def test_table_renders(self, surface):
        assert "Hybrid" in hybrid_scaling.hybrid_table(surface).to_text()


class TestFidelityAudit:
    @pytest.fixture(scope="class")
    def entries(self):
        from repro.experiments import fidelity
        return fidelity.run_fidelity_audit(size=800)

    def test_all_metrics_within_10pct(self, entries):
        from repro.experiments.fidelity import worst_deviation_pct
        assert worst_deviation_pct(entries) < 10.0

    def test_decode_coefficients_sub_percent(self, entries):
        decode = [e for e in entries if "decode" in e.metric]
        assert decode
        assert all(abs(e.deviation_pct) < 1.0 for e in decode)

    def test_table_renders(self, entries):
        from repro.experiments import fidelity
        assert "Fidelity" in fidelity.fidelity_table(entries).to_text()


class TestDeadlineControl:
    @pytest.fixture(scope="class")
    def rows(self):
        from repro.experiments import deadline_control
        return deadline_control.run_deadline_study(population=80)

    def test_three_policies(self, rows):
        assert len(rows) == 3

    def test_controller_zero_misses(self, rows):
        controller = next(r for r in rows if "controller" in r.policy)
        assert controller.miss_rate == 0.0

    def test_naive_static_misses(self, rows):
        naive = next(r for r in rows if "median" in r.policy)
        assert naive.miss_rate > 0.1

    def test_table_renders(self, rows):
        from repro.experiments import deadline_control
        assert "Deadline" in deadline_control.deadline_table(rows).to_text()


class TestTakeaways:
    @pytest.fixture(scope="class")
    def checks(self):
        from repro.experiments import takeaways
        return takeaways.run_takeaway_checks(size=600)

    def test_eleven_checks(self, checks):
        assert [c.number for c in checks] == list(range(1, 12))

    def test_all_hold(self, checks):
        assert all(c.holds for c in checks), [
            c.number for c in checks if not c.holds]

    def test_evidence_strings_populated(self, checks):
        assert all(c.evidence for c in checks)

    def test_table_renders(self, checks):
        from repro.experiments import takeaways
        text = takeaways.takeaways_table(checks).to_text()
        assert "PASS" in text


class TestRegistryIntegration:
    @pytest.mark.parametrize("artifact", ["serving", "power-modes",
                                          "deadline-control"])
    def test_extension_artifacts_run(self, artifact):
        assert render(run_experiment(artifact))
