"""Tests for the ASCII figure renderer."""

import pytest

from repro.experiments.ascii_plot import GLYPHS, render_figure
from repro.experiments.report import Figure, Series


def _figure():
    figure = Figure("F", "tokens", "seconds")
    figure.add(Series("a", (1.0, 2.0, 3.0), (1.0, 2.0, 3.0)))
    figure.add(Series("b", (1.0, 2.0, 3.0), (3.0, 2.0, 1.0)))
    return figure


class TestRenderFigure:
    def test_contains_title_axes_legend(self):
        text = render_figure(_figure())
        assert "F" in text
        assert "x: tokens, y: seconds" in text
        assert "a" in text and "b" in text

    def test_distinct_glyphs_per_series(self):
        text = render_figure(_figure())
        assert GLYPHS[0] in text and GLYPHS[1] in text

    def test_dimensions_respected(self):
        text = render_figure(_figure(), width=40, height=8)
        plot_lines = [line for line in text.splitlines() if "|" in line]
        assert len(plot_lines) == 8
        assert all(len(line.split("|", 1)[1]) == 40 for line in plot_lines)

    def test_log_scale_detected_for_wide_ranges(self):
        figure = Figure("L", "x", "y")
        figure.add(Series("s", (1.0, 10.0, 1000.0), (0.01, 1.0, 100.0)))
        text = render_figure(figure)
        assert "log-x" in text and "log-y" in text

    def test_linear_scale_for_narrow_ranges(self):
        text = render_figure(_figure())
        assert "log-" not in text

    def test_empty_figure(self):
        assert "(no series)" in render_figure(Figure("E", "x", "y"))

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            render_figure(_figure(), width=4, height=2)

    def test_real_experiment_figure_renders(self, engine_8b):
        # End-to-end: a real Fig. 3a renders without error.
        from repro.core.characterize import run_decode_sweep
        from repro.experiments.report import Figure, Series
        sweep = run_decode_sweep(engine_8b, output_lens=(64, 256, 1024))
        figure = Figure("Fig3a", "output_tokens", "latency_s")
        figure.add(Series("8b", tuple(float(v) for v in sweep.output_lens),
                          tuple(float(v) for v in sweep.seconds)))
        text = render_figure(figure)
        assert "Fig3a" in text

    def test_single_point_series(self):
        figure = Figure("P", "x", "y")
        figure.add(Series("s", (5.0,), (1.0,)))
        assert "P" in render_figure(figure)
