"""Tier policy, hysteretic load ladder, and the session budget manager."""

import pytest

from repro.tiering import (
    TIER_DEEP,
    TIER_FAST,
    BudgetManager,
    TierAssignment,
    TierLadder,
    TierPolicy,
    TieringConfig,
)
from repro.workloads.agentic import DagJob


def job(job_id=0, difficulty=0.5, session="user-000"):
    return DagJob(job_id=job_id, arrival_s=0.0, session=session,
                  difficulty=difficulty, kind="bbh", prompt_tokens=120)


class TestConfigValidation:
    def test_defaults_valid(self):
        TieringConfig()

    @pytest.mark.parametrize("kwargs", [
        {"deep_threshold": 0.0},
        {"deep_threshold": 1.0},
        {"predict_noise": -0.1},
        {"branches": 0},
        {"fast_branches": 0},
        {"min_stage_tokens": 0},
        {"plan_tokens": 8, "min_stage_tokens": 32},
        {"session_token_budget": 0},
        {"session_energy_budget_j": 0.0},
        {"enter_pressure": (2.0, 4.0)},
        {"enter_pressure": (6.0, 4.0, 2.0)},
        {"exit_pressure": (2.0, 4.0, 6.0)},  # not below enter
        {"ladder_margin": -0.5},
        {"tick_s": 0.0},
        {"fixed_tier": "verify"},
        {"fast_models": ()},
        {"deep_models": ("no-such-model",)},
        {"benchmark": "no-such-benchmark"},
    ])
    def test_bad_config_rejected(self, kwargs):
        with pytest.raises(ValueError):
            TieringConfig(**kwargs)

    def test_models_for_unknown_tier_rejected(self):
        with pytest.raises(ValueError):
            TieringConfig().models_for_tier("bogus")


class TestLadderHysteresis:
    def config(self):
        return TieringConfig(enter_pressure=(0.5, 1.0, 1.5),
                             exit_pressure=(0.25, 0.5, 0.75))

    def test_one_step_per_observation(self):
        ladder = TierLadder(self.config())
        # Pressure far above every rung still climbs one level at a time.
        assert ladder.observe(0.0, 99.0) == 1
        assert ladder.observe(1.0, 99.0) == 2
        assert ladder.observe(2.0, 99.0) == 3
        assert ladder.observe(3.0, 99.0) == 3  # saturates
        assert ladder.should_shed()
        assert ladder.max_level_reached() == 3

    def test_exit_below_entry_no_oscillation(self):
        ladder = TierLadder(self.config())
        ladder.observe(0.0, 0.6)  # enters level 1 (>= 0.5)
        assert ladder.level == 1
        # Pressure between exit (0.25) and enter (0.5): holds level 1.
        ladder.observe(1.0, 0.4)
        assert ladder.level == 1
        ladder.observe(2.0, 0.1)  # below exit: descends
        assert ladder.level == 0

    def test_transitions_recorded(self):
        ladder = TierLadder(self.config())
        ladder.observe(0.0, 2.0)
        ladder.observe(1.0, 0.0)
        assert ladder.transitions == [(0.0, 0, 1), (1.0, 1, 0)]


class TestTierPolicy:
    def test_prediction_deterministic_per_job(self):
        policy = TierPolicy(TieringConfig())
        assert (policy.predict_difficulty(job(7))
                == policy.predict_difficulty(job(7)))

    def test_hard_jobs_classified_deep(self):
        policy = TierPolicy(TieringConfig(predict_noise=0.0))
        assert policy.assign(job(difficulty=0.9), 0).tier == TIER_DEEP
        assert policy.assign(job(difficulty=0.1), 0).tier == TIER_FAST

    def test_ladder_level_two_forces_fast_single_branch_no_verify(self):
        policy = TierPolicy(TieringConfig(predict_noise=0.0))
        assignment = policy.assign(job(difficulty=0.95), 2)
        assert assignment.tier == TIER_FAST
        assert assignment.branches == 1
        assert not assignment.verify
        assert assignment.load_downgraded

    def test_fixed_tier_ignores_ladder(self):
        policy = TierPolicy(TieringConfig(predict_noise=0.0,
                                          fixed_tier="deep"))
        assignment = policy.assign(job(difficulty=0.1), 2)
        assert assignment.tier == TIER_DEEP
        assert not assignment.load_downgraded


class TestBudgetManager:
    def assignment(self, tier=TIER_DEEP, branches=3, verify=True):
        return TierAssignment(tier, branches, verify, 0.7, False)

    def test_fit_as_is_when_budget_ample(self):
        config = TieringConfig(session_token_budget=8000)
        manager = BudgetManager(config)
        fitted, branch_budget = manager.fit("s", self.assignment())
        assert fitted.tier == TIER_DEEP
        assert branch_budget == config.deep_tokens
        assert manager.downgrades == 0

    def test_fit_downgrades_under_tight_budget(self):
        # 96 plan + 3*640 deep + 96 verify = 2112 does not fit 600, but
        # a downgraded shape does.
        config = TieringConfig(session_token_budget=600)
        manager = BudgetManager(config)
        fitted, branch_budget = manager.fit("s", self.assignment())
        assert fitted.tier == TIER_FAST
        assert manager.downgrades == 1
        cost = (config.plan_tokens + fitted.branches * branch_budget
                + (config.verify_tokens if fitted.verify else 0))
        assert cost <= 600

    def test_fit_sheds_when_nothing_fits(self):
        config = TieringConfig(session_token_budget=100)
        manager = BudgetManager(config)
        assert manager.fit("s", self.assignment()) is None
        assert manager.shed_jobs == 1

    def test_reserve_refund_roundtrip(self):
        config = TieringConfig(session_token_budget=1000)
        manager = BudgetManager(config)
        manager.reserve("s", rid=1, tokens=400)
        assert manager.remaining_tokens("s") == 600
        manager.refund("s", rid=1, spent_tokens=150)
        assert manager.remaining_tokens("s") == 850
        assert manager.tokens_refunded == 250

    def test_refund_never_exceeds_reservation(self):
        manager = BudgetManager(TieringConfig(session_token_budget=1000))
        manager.reserve("s", rid=1, tokens=100)
        manager.refund("s", rid=1, spent_tokens=500)  # overspend: no refund
        assert manager.remaining_tokens("s") == 900
        assert manager.tokens_refunded == 0

    def test_top_up_grants_banked_surplus(self):
        manager = BudgetManager(TieringConfig(session_token_budget=500))
        manager.reserve("s", rid=1, tokens=400)  # 100 left
        granted = manager.top_up("s", rid=2, granted=32, full=256)
        assert granted == 132  # capped by the session's remaining 100
        assert manager.tokens_redistributed == 100
        assert manager.remaining_tokens("s") == 0

    def test_top_up_noop_at_full_budget(self):
        manager = BudgetManager(TieringConfig())
        assert manager.top_up("s", rid=2, granted=256, full=256) == 256
        assert manager.tokens_redistributed == 0

    def test_sessions_isolated(self):
        manager = BudgetManager(TieringConfig(session_token_budget=1000))
        manager.reserve("a", rid=1, tokens=900)
        assert manager.remaining_tokens("a") == 100
        assert manager.remaining_tokens("b") == 1000

    def test_energy_budget_gates_fit(self):
        config = TieringConfig(session_energy_budget_j=1.0,
                               session_token_budget=8000)
        manager = BudgetManager(config)
        # Every candidate quotes above the 1 J budget: shed.
        assert manager.fit("s", self.assignment(),
                           quote=lambda models, p, b: 50.0) is None
