"""Tests for prefix caching."""

import pytest

from repro.engine.prefix_cache import (
    PrefixCache,
    prefill_with_prefix,
    prefix_caching_speedup,
)


@pytest.fixture()
def cache():
    # Room for ~1000 cached tokens at 1 kB/token.
    return PrefixCache(capacity_bytes=1_000_000, kv_bytes_per_token=1000.0)


class TestPrefixCacheLru:
    def test_insert_and_lookup(self, cache):
        cache.insert("few-shot-v1", 500)
        entry = cache.lookup("few-shot-v1")
        assert entry is not None
        assert entry.token_count == 500

    def test_miss_returns_none(self, cache):
        assert cache.lookup("nope") is None

    def test_eviction_order_is_lru(self, cache):
        cache.insert("a", 400)
        cache.insert("b", 400)
        cache.lookup("a")          # refresh a
        cache.insert("c", 400)     # evicts b
        assert "a" in cache
        assert "b" not in cache
        assert "c" in cache

    def test_used_bytes(self, cache):
        cache.insert("a", 300)
        assert cache.used_bytes == pytest.approx(300_000)

    def test_oversized_prefix_rejected(self, cache):
        with pytest.raises(ValueError):
            cache.insert("huge", 2000)

    def test_explicit_evict(self, cache):
        cache.insert("a", 100)
        cache.evict("a")
        assert len(cache) == 0

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            PrefixCache(0, 1000.0)
        with pytest.raises(ValueError):
            PrefixCache(1000.0, 0)


class TestSuffixPrefill:
    def test_warm_prefix_is_faster(self, engine_8b):
        cold = engine_8b.kernels.prefill(engine_8b.profile, 2048).seconds
        warm = prefill_with_prefix(engine_8b, 2048, 1792).seconds
        assert warm < cold

    def test_speedup_grows_with_cached_share(self, engine_8b):
        small = prefix_caching_speedup(engine_8b, 2048, 512)
        large = prefix_caching_speedup(engine_8b, 2048, 1920)
        assert large > small > 1.0

    def test_natural_plan_shape_benefit(self, engine_8b):
        # ~1.8k-token few-shot prompt with ~1.6k shared: multi-x prefill win.
        assert prefix_caching_speedup(engine_8b, 1800, 1600) > 1.5

    def test_zero_cache_equals_baseline(self, engine_8b):
        cold = engine_8b.kernels.prefill(engine_8b.profile, 1024).seconds
        assert prefill_with_prefix(engine_8b, 1024, 0).seconds == pytest.approx(
            cold)

    def test_weight_stream_floor(self, engine_8b):
        # Even a fully warm prefix still streams the weights once.
        calib = engine_8b.calibration
        stream_s = engine_8b.profile.weight_bytes / (
            engine_8b.soc.dram_bandwidth
            * calib.prefill_weight_stream_efficiency)
        warm = prefill_with_prefix(engine_8b, 2048, 2047).seconds
        assert warm > stream_s

    def test_bounds_checked(self, engine_8b):
        with pytest.raises(ValueError):
            prefill_with_prefix(engine_8b, 100, 100)
        with pytest.raises(ValueError):
            prefill_with_prefix(engine_8b, 100, -1)
