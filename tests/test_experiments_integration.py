"""Integration tests: each paper artifact runs and shows the paper's shape.

These assert the *qualitative* findings (who wins, by roughly what
factor, where crossovers fall) rather than exact numbers.
"""

import numpy as np
import pytest

from repro.experiments import (
    cpu_vs_gpu,
    decode_latency,
    frameworks,
    latency_validation,
    mmlu_full,
    motivation,
    natural_plan,
    parallel_scaling,
    pd_ratio,
    power_energy,
    prefill_latency,
    quantization,
    tradeoff_frontier,
)
from repro.experiments.runner import list_experiments, render, run_experiment


@pytest.fixture(scope="module")
def characterizations():
    return prefill_latency.run_characterizations()


@pytest.fixture(scope="module")
def tradeoff_results():
    return tradeoff_frontier.run_tradeoff_grid(seed=0, size=1000)


class TestMotivation:
    @pytest.fixture(scope="class")
    def table2_rows(self):
        return motivation.run_table2(questions=150)

    def test_reasoning_models_more_accurate_at_scale(self, table2_rows):
        by_model = {r.model: r for r in table2_rows}
        # Table II: DSR1-14B beats every non-reasoning baseline.
        assert by_model["DSR1-Qwen-14B"].accuracy_pct > 70
        assert by_model["DSR1-Qwen-14B"].accuracy_pct > \
            by_model["Qwen2.5-7B-it"].accuracy_pct

    def test_reasoning_latency_overhead_over_10x(self, table2_rows):
        by_model = {r.model: r for r in table2_rows}
        ratio = (by_model["DSR1-Llama-8B"].decode_time_s
                 / by_model["Llama3.1-8B-it"].decode_time_s)
        assert ratio > 10

    def test_reasoning_energy_overhead(self, table2_rows):
        by_model = {r.model: r for r in table2_rows}
        assert (by_model["DSR1-Llama-8B"].energy_per_question_j
                > 20 * by_model["Llama3.1-8B-it"].energy_per_question_j)

    def test_table3_edge_orders_of_magnitude_cheaper(self):
        rows = motivation.run_table3()
        edge_batch1 = rows[0]
        cloud = rows[-1]
        assert cloud.price_usd_per_mtok / edge_batch1.price_usd_per_mtok > 50
        # DeepScaleR beats o1-preview on AIME (Table III).
        assert edge_batch1.accuracy_aime_pct > cloud.accuracy_aime_pct

    def test_table3_batching_cuts_cost(self):
        rows = motivation.run_table3()
        assert rows[1].price_usd_per_mtok < rows[0].price_usd_per_mtok / 3

    def test_tables_render(self):
        rows = motivation.run_table2(questions=50)
        assert "Table II" in motivation.table2(rows).to_text()


class TestLatencyCharacterization:
    def test_table4_coefficients_near_paper(self, characterizations):
        table = prefill_latency.table4(characterizations)
        assert len(table.rows) == 3

    def test_fig2_has_measured_and_fitted_series(self, characterizations):
        figure = prefill_latency.figure2(characterizations)
        assert len(figure.series) == 6

    def test_fig3_series(self, characterizations):
        assert len(decode_latency.figure3a(characterizations).series) == 6
        assert len(decode_latency.figure3b(characterizations).series) == 3

    def test_tbt_increase_small(self, characterizations):
        # Fig. 3b: ~3% TBT rise from context 1 to 4k for the 8B model.
        increase = decode_latency.tbt_increase_with_context(characterizations)
        assert 0.0 < increase < 0.10

    def test_table6_total_mape_under_2pct(self, characterizations):
        rows = latency_validation.run_table6(characterizations)
        for row in rows:
            assert row.total_mape < 2.0

    def test_table8_energy_mape_single_digit(self, characterizations):
        for row in power_energy.run_table8(characterizations):
            assert row.decode_mape < 10.0

    def test_fig4_smaller_models_more_efficient(self, characterizations):
        _, energy_fig = power_energy.figure4(characterizations)
        by_label = {s.label: s for s in energy_fig.series}
        small = np.mean(by_label["dsr1-qwen-1.5b"].y)
        large = np.mean(by_label["dsr1-qwen-14b"].y)
        assert small < large

    def test_fig5_energy_per_token_gap(self, characterizations):
        # Fig. 5: multi-x energy/token advantage for the 1.5B vs 14B.
        _, energy_fig = power_energy.figure5(characterizations)
        by_label = {s.label: s for s in energy_fig.series}
        ratio = np.mean(by_label["dsr1-qwen-14b"].y) / np.mean(
            by_label["dsr1-qwen-1.5b"].y)
        assert ratio > 4

    def test_tables_20_21_render(self, characterizations):
        assert power_energy.table20(characterizations).rows
        assert power_energy.table21(characterizations).rows


class TestPdRatio:
    def test_takeaway2_decode_dominates(self):
        rows = pd_ratio.run_table7(size=400)
        for row in rows:
            assert row.latency_ratio > 100
            assert row.decode_time_share > 0.99


class TestTradeoffGrid:
    def test_grid_covers_all_configs(self, tradeoff_results):
        assert len(tradeoff_results) == 31

    def test_takeaway5_prompt_control_reduces_tokens(self, tradeoff_results):
        by_label = {r.label: r for r in tradeoff_results}
        assert (by_label["DSR1-Llama-8B 128T"].mean_output_tokens
                < 0.15 * by_label["DSR1-Llama-8B Base"].mean_output_tokens)

    def test_crossover_14b_256t_beats_8b_base_latency(self, tradeoff_results):
        # Section V-A: 14B 256T reaches comparable accuracy to 8B Base at
        # ~4x lower latency.
        by_label = {r.label: r for r in tradeoff_results}
        fast = by_label["DSR1-Qwen-14B 256T"]
        slow = by_label["DSR1-Llama-8B Base"]
        assert fast.mean_latency_seconds < slow.mean_latency_seconds / 3
        assert abs(fast.accuracy - slow.accuracy) < 0.08

    def test_takeaway8_direct_beats_reasoning_at_low_latency(self, tradeoff_results):
        by_label = {r.label: r for r in tradeoff_results}
        direct = by_label["Llama3.1-8B-it Direct"]
        constrained = by_label["DSR1-Llama-8B 128T"]
        assert direct.accuracy > constrained.accuracy
        assert direct.mean_latency_seconds < 10

    def test_nr_beats_base_only_for_1p5b(self, tradeoff_results):
        by_label = {r.label: r for r in tradeoff_results}
        assert (by_label["DSR1-Qwen-1.5B NR"].accuracy
                > by_label["DSR1-Qwen-1.5B Base"].accuracy)
        assert (by_label["DSR1-Qwen-14B NR"].accuracy
                < by_label["DSR1-Qwen-14B Base"].accuracy)

    def test_figures_render(self, tradeoff_results):
        for builder in (tradeoff_frontier.figure6, tradeoff_frontier.figure7,
                        tradeoff_frontier.figure8):
            figure = builder(tradeoff_results)
            assert figure.series

    def test_regimes_small_models_fast_band(self, tradeoff_results):
        regimes = tradeoff_frontier.latency_regimes(tradeoff_results)
        bands = {r.band: r for r in regimes}
        # Sub-5s band served by small/direct models; >30s by the 14B.
        assert "1.5B" in bands["<5s"].best_label or "7B" in bands["<5s"].best_label
        assert "14B" in bands[">30s"].best_label

    def test_tables_10_11_shapes(self, tradeoff_results):
        assert len(tradeoff_frontier.table10(tradeoff_results).rows) == 12
        assert len(tradeoff_frontier.table11(tradeoff_results).rows) == 19


class TestParallelScaling:
    @pytest.fixture(scope="class")
    def curves_128(self):
        return parallel_scaling.run_scaling_study(
            parallel_scaling.FIG9_MODELS, 128, size=800)

    def test_takeaway9_gains_at_128_budget(self, curves_128):
        # Fig. 9a: 1.5-1.8x accuracy from 1x -> 32x for DSR1 models.
        for name in ("dsr1-qwen-1.5b", "dsr1-qwen-14b"):
            gain = parallel_scaling.accuracy_gain(curves_128[name])
            assert 1.4 < gain < 2.1

    def test_l1_negligible_gain(self, curves_128):
        gain = parallel_scaling.accuracy_gain(curves_128["l1-max"])
        assert 0.85 < gain < 1.2

    def test_plateau_at_512_budget(self):
        curves = parallel_scaling.run_scaling_study(("dsr1-qwen-14b",), 512,
                                                    size=800)
        points = curves["dsr1-qwen-14b"]
        acc = {p.scale_factor: p.accuracy for p in points}
        # Gains past 4x-8x are marginal (Fig. 9b).
        assert acc[32] - acc[8] < 0.05

    def test_fig10_outputs(self):
        latency_fig, energy_fig, power_fig = parallel_scaling.figure10(
            output_budget=128)
        for figure in (latency_fig, energy_fig):
            assert len(figure.series) == 3
        for series in latency_fig.series:
            assert list(series.y) == sorted(series.y)


class TestQuantization:
    @pytest.fixture(scope="class")
    def quant_chars(self):
        return quantization.run_quantized_characterizations()

    def test_takeaway11_speedup_grows_with_size(self):
        rows = quantization.run_figure14(size=800)
        speedups = [row.latency_speedup for row in rows]
        assert speedups[0] < speedups[2]
        assert all(1.2 < s < 5.5 for s in speedups)

    def test_takeaway11_small_accuracy_loss(self):
        rows = quantization.run_figure14(size=800)
        for row in rows:
            assert abs(row.relative_accuracy_loss_pct) < 10.0

    def test_figures_11_to_13_render(self, quant_chars):
        for builder in (quantization.figure11, quantization.figure12,
                        quantization.figure13):
            pair = builder(quant_chars)
            assert all(fig.series for fig in pair)

    def test_tables_22_23(self, quant_chars):
        prefill_table, decode_table = quantization.table22_23(quant_chars)
        assert len(prefill_table.rows) == 3
        assert len(decode_table.rows) == 3


class TestFrameworks:
    def test_table9_vllm_speedup_band(self):
        rows = frameworks.run_table9()
        for row in rows:
            assert 1.05 < row.speedup_over("vllm") < 1.25
            assert 0.95 < row.speedup_over("trt-llm") < 1.25


class TestMmluFull:
    def test_table12_budget_hurts_accuracy(self):
        results = mmlu_full.run_table12(size=2000)
        by_key = {(r.model, r.control.label): r for r in results}
        base = by_key[("dsr1-qwen-14b", "Base")]
        budgeted = by_key[("dsr1-qwen-14b", "128T")]
        # Table XII: 14B drops from ~86.6% to ~28.3% at a 128 budget.
        assert base.accuracy > 0.8
        assert budgeted.accuracy < 0.35


class TestNaturalPlan:
    def test_baseline_accuracy_low(self):
        results = natural_plan.run_baseline()
        assert all(r.accuracy < 0.25 for r in results)

    def test_budgeting_keeps_accuracy_at_fraction_of_latency(self):
        baseline = {(r.benchmark, r.model): r for r in natural_plan.run_baseline()}
        budgeted = natural_plan.run_budgeted()
        for result in budgeted:
            base = baseline[(result.benchmark, result.model)]
            if "14b" in result.model:
                assert result.mean_latency_seconds < base.mean_latency_seconds / 2
                assert result.accuracy > base.accuracy - 0.05

    def test_direct_14b_wins_calendar(self):
        # Table XV: Qwen2.5-14B-it direct scores ~32% on calendar,
        # beating every reasoning configuration.
        direct = natural_plan.run_direct()
        calendar = [r for r in direct if "calendar" in r.benchmark
                    and "14B" in r.display_name][0]
        assert calendar.accuracy > 0.25


class TestCpuVsGpu:
    def test_prefill_speedups_two_orders(self):
        rows = cpu_vs_gpu.run_table16()
        assert all(100 < row.speedup < 600 for row in rows)

    def test_decode_speedup_near_5x(self):
        rows = cpu_vs_gpu.run_table17()
        assert all(3.5 < row.speedup < 7.0 for row in rows)


class TestRunnerRegistry:
    def test_all_artifacts_listed(self):
        ids = list_experiments()
        assert len(ids) >= 30
        assert "fig7" in ids and "table11" in ids

    def test_unknown_artifact(self):
        with pytest.raises(KeyError):
            run_experiment("fig99")

    def test_render_handles_tuples(self):
        out = run_experiment("table9")
        assert "Table IX" in render(out)
