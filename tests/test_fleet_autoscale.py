"""Autoscale lifecycle state machine, arrivals, and the chaos drill.

The hypothesis suite drives :class:`AutoscaleController` through
arbitrary tick/crash/emergency sequences and asserts the machine only
ever takes edges in :data:`LEGAL_TRANSITIONS` — the invariant the
zero-loss scale-safety gate rests on.
"""

import json
import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.engine.request import GenerationRequest
from repro.faults.injector import (
    DeviceFault,
    FleetFaultConfig,
    FleetFaultSchedule,
)
from repro.fleet import (
    LEGAL_TRANSITIONS,
    AutoscaleConfig,
    AutoscaleController,
    FleetGateway,
    FleetRequest,
    LifecycleState,
    build_fleet,
    poisson_stream,
)
from repro.fleet.autoscale import AWAKE_STATES, IllegalTransition
from repro.workloads.arrivals import (
    diurnal_arrivals,
    flash_crowd_arrivals,
    poisson_arrivals,
)

_NAMES = ("edge-00", "edge-01", "edge-02", "edge-03")

# Short holds so random drives actually reach every lifecycle state.
_FAST = AutoscaleConfig(hold_up_s=0.0, hold_down_s=2.0,
                        wake_latency_s=1.5, drain_grace_s=3.0)

# One controller operation: a tick at some pressure/backlog, a crash
# delivered to one device, or an emergency wake/activate.
_ops = st.lists(
    st.one_of(
        st.tuples(st.just("tick"), st.floats(0.0, 8.0),
                  st.integers(0, 6)),
        st.tuples(st.just("crash"), st.integers(0, 3), st.just(0)),
        st.tuples(st.just("ewake"), st.just(0), st.just(0)),
        st.tuples(st.just("eact"), st.just(0), st.just(0)),
    ),
    min_size=1, max_size=60)


def _drive(ctrl, ops, dt=1.0):
    """Replay an op sequence at fixed time steps; returns final time."""
    t = 0.0
    for op, a, b in ops:
        t += dt
        if op == "tick":
            ctrl.tick(t, a, outstanding={n: b for n in ctrl.names})
        elif op == "crash":
            ctrl.on_crash(t, ctrl.names[a % len(ctrl.names)])
        elif op == "ewake":
            ctrl.emergency_wake(t)
        else:
            ctrl.emergency_activate(t)
    return t


class TestLifecycleStateMachine:
    @given(ops=_ops)
    @settings(max_examples=200, deadline=None)
    def test_only_legal_transitions(self, ops):
        ctrl = AutoscaleController(_NAMES, _FAST)
        _drive(ctrl, ops)
        for _, _, src, dst in ctrl.transitions:
            assert (src, dst) in LEGAL_TRANSITIONS

    @given(ops=_ops)
    @settings(max_examples=200, deadline=None)
    def test_transitions_chain_per_device(self, ops):
        ctrl = AutoscaleController(_NAMES, _FAST)
        _drive(ctrl, ops)
        state = {name: LifecycleState.ACTIVE for name in ctrl.names}
        last_t = -math.inf
        for t, name, src, dst in ctrl.transitions:
            assert t >= last_t      # chronological log
            assert src == state[name]
            state[name] = dst
            last_t = t
        for name in ctrl.names:
            assert ctrl.state(name) == state[name]

    @given(ops=_ops)
    @settings(max_examples=100, deadline=None)
    def test_same_ops_replay_identically(self, ops):
        a = AutoscaleController(_NAMES, _FAST)
        b = AutoscaleController(_NAMES, _FAST)
        _drive(a, ops)
        _drive(b, ops)
        assert a.transitions == b.transitions
        assert [a.state(n) for n in a.names] == \
               [b.state(n) for n in b.names]

    @given(ops=_ops)
    @settings(max_examples=100, deadline=None)
    def test_ledger_covers_the_whole_run(self, ops):
        ctrl = AutoscaleController(_NAMES, _FAST)
        end = _drive(ctrl, ops) + 1.0
        report = ctrl.report(end)
        total = report.active_device_s + report.asleep_device_s
        assert total == pytest.approx(len(_NAMES) * end)
        assert report.energy_saved_j == pytest.approx(
            report.always_on_idle_energy_j
            - (report.idle_energy_j + report.sleep_energy_j
               + report.wake_energy_j + report.dvfs_energy_j))

    def test_illegal_edge_raises(self):
        ctrl = AutoscaleController(_NAMES)
        with pytest.raises(IllegalTransition):
            ctrl._move(0.0, "edge-00", LifecycleState.ASLEEP)

    def test_awake_states_cover_everything_but_asleep(self):
        assert AWAKE_STATES == frozenset(LifecycleState) - {
            LifecycleState.ASLEEP}


def _cordon_and_drain(ctrl, victim_outstanding=1):
    """Drive one device of a fresh default-config controller into
    DRAINING; returns (draining_name, time)."""
    out = {n: 3 for n in ctrl.names}
    out[ctrl.names[0]] = victim_outstanding
    ctrl.tick(10.0, 0.0, outstanding=out)       # dwell met -> cordon
    assert ctrl.state(ctrl.names[0]) is LifecycleState.CORDONED
    ctrl.tick(11.0, 0.0, outstanding=out)       # still calm -> drain
    assert ctrl.state(ctrl.names[0]) is LifecycleState.DRAINING
    return ctrl.names[0], 11.0


class TestCrashDuringTransitions:
    def test_crash_mid_drain_sleeps_and_counts(self):
        ctrl = AutoscaleController(_NAMES)
        name, t = _cordon_and_drain(ctrl)
        ctrl.on_crash(t + 0.5, name)
        assert ctrl.state(name) is LifecycleState.ASLEEP
        assert ctrl.crashes_draining == 1
        assert ctrl.sleeps == 1

    def test_crash_mid_wake_aborts_the_wake(self):
        ctrl = AutoscaleController(_NAMES)
        name, t = _cordon_and_drain(ctrl, victim_outstanding=0)
        # Empty drain completes on the next tick -> ASLEEP.
        ctrl.tick(t + 1.0, 0.0, outstanding={n: 0 for n in ctrl.names})
        assert ctrl.state(name) is LifecycleState.ASLEEP
        woken = ctrl.emergency_wake(t + 2.0)
        assert woken == name
        ctrl.on_crash(t + 2.5, name)            # before wake_latency_s
        assert ctrl.state(name) is LifecycleState.ASLEEP
        assert ctrl.crashes_waking == 1
        assert ctrl.wakes == 0                  # the wake never completed

    def test_crash_on_active_leaves_lifecycle_alone(self):
        ctrl = AutoscaleController(_NAMES)
        ctrl.on_crash(1.0, "edge-00")
        assert ctrl.state("edge-00") is LifecycleState.ACTIVE
        assert ctrl.transitions == []


class TestControllerPolicy:
    def test_proportional_wake_covers_the_backlog(self):
        ctrl = AutoscaleController(_NAMES, _FAST, capacity=4.0)
        out0 = {n: 0 for n in ctrl.names}
        # Scale three devices down to sleep (one cordon per tick).
        for t in (3.0, 6.0, 9.0):
            ctrl.tick(t, 0.0, outstanding=out0)
            ctrl.tick(t + 1.0, 0.0, outstanding=out0)
            ctrl.tick(t + 2.0, 0.0, outstanding=out0)
        assert len([n for n in ctrl.names
                    if ctrl.state(n) is LifecycleState.ASLEEP]) == 3
        # A flash crowd lands: one tick must start every wake needed.
        active = [n for n in ctrl.names
                  if ctrl.state(n) is LifecycleState.ACTIVE]
        crowd = {n: 0 for n in ctrl.names}
        crowd[active[0]] = 40                   # 40 / 1.2 >> 4 per box
        ctrl.tick(20.0, 10.0, outstanding=crowd)
        waking = [n for n in ctrl.names
                  if ctrl.state(n) is LifecycleState.WAKING]
        assert len(waking) == 3

    def test_hold_down_blocks_immediate_cordon_after_wake(self):
        ctrl = AutoscaleController(_NAMES)
        ctrl.emergency_wake(5.0)
        ctrl.tick(9.0, 0.0, outstanding={n: 0 for n in ctrl.names})
        assert all(ctrl.state(n) is not LifecycleState.CORDONED
                   for n in ctrl.names)

    def test_min_active_is_never_drained(self):
        ctrl = AutoscaleController(_NAMES, _FAST)
        out = {n: 0 for n in ctrl.names}
        for k in range(40):
            ctrl.tick(3.0 + k, 0.0, outstanding=out)
        assert ctrl.active_count() >= ctrl.config.min_active

    def test_expired_drain_emits_evacuate(self):
        ctrl = AutoscaleController(_NAMES)
        name, t = _cordon_and_drain(ctrl)
        out = {n: 0 for n in ctrl.names}
        out[name] = 2                           # never empties
        actions = ctrl.tick(t + ctrl.config.drain_grace_s, 0.0,
                            outstanding=out)
        assert ("evacuate", name) in actions
        assert ctrl.state(name) is LifecycleState.ASLEEP

    def test_scale_up_defers_upshift_on_busy_device(self):
        ctrl = AutoscaleController(_NAMES, _FAST)
        out0 = {n: 0 for n in ctrl.names}
        ctrl.tick(3.0, 0.0, outstanding=out0)   # cordon one device
        ctrl.tick(4.0, 0.0, outstanding=out0)   # -> DRAINING
        ctrl.tick(5.0, 0.0, outstanding=out0)   # -> ASLEEP
        sleeper = next(n for n in ctrl.names
                       if ctrl.state(n) is LifecycleState.ASLEEP)
        economy = next(n for n in ctrl.names
                       if ctrl.state(n) is LifecycleState.ACTIVE)
        ctrl.note_mode(5.0, economy, "30W")
        # Flash crowd with the economy device busy: no upshift may be
        # emitted (set_power_mode would raise on outstanding work);
        # capacity must come from waking the sleeper instead.
        busy = {n: 8 for n in ctrl.names}
        actions = ctrl.tick(8.0, 5.0, outstanding=busy)
        assert not [a for a in actions if a[0] == "set_mode"]
        assert ctrl.state(sleeper) is LifecycleState.WAKING
        # Once the economy device is idle again the upshift goes out.
        idle = dict(busy)
        idle[economy] = 0
        actions = ctrl.tick(9.0, 5.0, outstanding=idle)
        assert ("set_mode", economy, "MAXN") in actions

    @given(ops=st.lists(
        st.tuples(st.floats(0.0, 8.0),
                  st.tuples(*[st.integers(0, 6)] * len(_NAMES))),
        min_size=1, max_size=60))
    @settings(max_examples=100, deadline=None)
    def test_set_mode_only_targets_idle_devices(self, ops):
        """The controller must never ask the gateway to DVFS-switch a
        device holding outstanding work (the switch would raise)."""
        ctrl = AutoscaleController(_NAMES, _FAST)
        t = 0.0
        for pressure, outs in ops:
            t += 1.0
            out = dict(zip(ctrl.names, outs))
            for action in ctrl.tick(t, pressure, outstanding=out):
                if action[0] == "set_mode":
                    assert out[action[1]] == 0
                    ctrl.note_mode(t, action[1], action[2])

    def test_scale_down_never_cordons_a_down_device(self):
        ctrl = AutoscaleController(_NAMES, _FAST)
        down = frozenset({"edge-00", "edge-01"})
        out = {n: 0 for n in ctrl.names}
        out["edge-03"] = 1
        # The crashed devices sort emptiest, but the cordon victim must
        # be an *up* active.
        ctrl.tick(3.0, 0.0, down=down, outstanding=out)
        assert ctrl.state("edge-02") is LifecycleState.CORDONED
        assert ctrl.state("edge-00") is LifecycleState.ACTIVE
        assert ctrl.state("edge-01") is LifecycleState.ACTIVE

    def test_down_devices_cannot_carry_min_active(self):
        ctrl = AutoscaleController(_NAMES, _FAST)
        down = frozenset({"edge-00", "edge-01", "edge-02"})
        out = {n: 0 for n in ctrl.names}
        for k in range(10):
            ctrl.tick(3.0 + k, 0.0, down=down, outstanding=out)
        # The only healthy device is the min_active floor: it must not
        # be drained away while crashed actives satisfy the quota.
        assert ctrl.state("edge-03") is LifecycleState.ACTIVE

    def test_max_cycles_bound_grows_with_duration(self):
        ctrl = AutoscaleController(_NAMES)
        assert ctrl.max_cycles_bound(0.0) == 1
        period = ctrl.config.hold_down_s + ctrl.config.hold_up_s
        assert ctrl.max_cycles_bound(10 * period) == 11

    def test_aborted_wake_still_charges_boot_energy(self):
        ctrl = AutoscaleController(_NAMES)
        name, t = _cordon_and_drain(ctrl, victim_outstanding=0)
        ctrl.tick(t + 1.0, 0.0, outstanding={n: 0 for n in ctrl.names})
        assert ctrl.state(name) is LifecycleState.ASLEEP
        ctrl.emergency_wake(t + 2.0)
        ctrl.on_crash(t + 2.5, name)            # abort mid-wake
        report = ctrl.report(t + 3.0)
        # The cold boot burned real power even though it never finished.
        assert report.wakes == 0
        assert report.wake_energy_j == pytest.approx(
            ctrl.config.wake_energy_j)

    def test_note_mode_reprices_idle_floor(self):
        cfg = AutoscaleConfig(dvfs_transition_s=0.0)
        ctrl = AutoscaleController(("a", "b"), cfg, idle_power_w=4.0)
        ctrl.note_mode(10.0, "a", "30W", idle_power_w=1.0)
        report = ctrl.report(20.0)
        # a: 10 s at 4 W then 10 s at 1 W; b: 20 s at 4 W.
        assert report.idle_energy_j == pytest.approx(40.0 + 10.0 + 80.0)
        assert report.dvfs_switches == 1
        # A floor below the always-on baseline means DVFS can *save*.
        assert report.energy_saved_j == pytest.approx(160.0 - 130.0)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            AutoscaleConfig(scale_up_pressure=0.0)
        with pytest.raises(ValueError):
            AutoscaleConfig(scale_down_pressure=2.0)  # >= scale_up
        with pytest.raises(ValueError):
            AutoscaleConfig(min_active=0)
        with pytest.raises(ValueError):
            AutoscaleConfig(economy_mode="9000W")
        with pytest.raises(ValueError):
            AutoscaleController(("a",), AutoscaleConfig(min_active=2))


class TestArrivalGenerators:
    def test_diurnal_is_sorted_and_sized(self):
        rng = np.random.default_rng(0)
        arrivals = diurnal_arrivals(rng, 1.0, 5.0, 60.0, 200)
        assert len(arrivals) == 200
        assert np.all(np.diff(arrivals) >= 0)
        assert arrivals[0] >= 0

    def test_diurnal_peak_is_denser_than_trough(self):
        rng = np.random.default_rng(3)
        period = 100.0
        arrivals = diurnal_arrivals(rng, 0.5, 8.0, period, 400)
        phase = np.mod(arrivals, period) / period
        trough = np.sum((phase < 0.125) | (phase > 0.875))
        peak = np.sum((phase > 0.375) & (phase < 0.625))
        assert peak > 2 * trough

    def test_diurnal_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            diurnal_arrivals(rng, 0.0, 5.0, 60.0, 10)
        with pytest.raises(ValueError):
            diurnal_arrivals(rng, 2.0, 1.0, 60.0, 10)  # peak < base
        with pytest.raises(ValueError):
            diurnal_arrivals(rng, 1.0, 5.0, 0.0, 10)
        with pytest.raises(ValueError):
            diurnal_arrivals(rng, 1.0, 5.0, 60.0, -1)

    def test_flash_crowd_superposes_and_sorts(self):
        rng = np.random.default_rng(1)
        arrivals = flash_crowd_arrivals(rng, 1.0, 50, 30.0, 20.0, 40)
        assert len(arrivals) == 90
        assert np.all(np.diff(arrivals) >= 0)
        assert np.sum(arrivals >= 30.0) >= 40   # the burst is there

    def test_flash_crowd_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            flash_crowd_arrivals(rng, 1.0, 10, -1.0, 5.0, 5)
        with pytest.raises(ValueError):
            flash_crowd_arrivals(rng, 1.0, 10, math.nan, 5.0, 5)
        with pytest.raises(ValueError):
            flash_crowd_arrivals(rng, 1.0, 10, 5.0, 0.0, 5)

    def test_same_seed_reproduces(self):
        a = diurnal_arrivals(np.random.default_rng(7), 1.0, 4.0, 50.0, 64)
        b = diurnal_arrivals(np.random.default_rng(7), 1.0, 4.0, 50.0, 64)
        np.testing.assert_array_equal(a, b)


class TestFaultScheduleEvents:
    def test_explicit_events_join_the_schedule(self):
        crash = DeviceFault("edge-01", "crash", 5.0, 10.0)
        schedule = FleetFaultSchedule(
            ("edge-00", "edge-01"),
            FleetFaultConfig(device_crashes=0, brownouts=0,
                             flapping_devices=0, thermal_throttles=0),
            events=[crash])
        assert schedule.crashes() == (crash,)

    def test_unknown_device_in_event_rejected(self):
        with pytest.raises(ValueError, match="unknown device"):
            FleetFaultSchedule(
                ("edge-00",),
                events=[DeviceFault("edge-99", "crash", 5.0, 10.0)])

    def test_device_fault_time_validation(self):
        with pytest.raises(ValueError):
            DeviceFault("d", "crash", -1.0, 5.0)
        with pytest.raises(ValueError):
            DeviceFault("d", "crash", math.nan, 5.0)
        with pytest.raises(ValueError):
            DeviceFault("d", "crash", math.inf, 5.0)
        with pytest.raises(ValueError):
            DeviceFault("d", "crash", 1.0, math.nan)
        # A device that never recovers stays expressible.
        DeviceFault("d", "crash", 1.0, math.inf)


class TestUnknownPolicyFailsFast:
    def test_plan_fleet_rejects_unknown_policy(self):
        from repro.core.planner import plan_fleet

        with pytest.raises(ValueError, match="unknown routing policy"):
            plan_fleet(device_counts=(2,), mixes=("balanced",),
                       policies=("round-robin", "bogus"), num_requests=2)

    def test_cli_fleet_rejects_unknown_policy(self, capsys):
        from repro.cli import main

        code = main(["fleet", "--policy", "bogus", "--requests", "2"])
        assert code == 2
        err = capsys.readouterr().err
        assert "unknown routing policy" in err
        assert "round-robin" in err


def _tiny_run(autoscale):
    fleet = build_fleet(3, mix="balanced", max_batch_size=4)
    gateway = FleetGateway(fleet, policy="least-outstanding",
                           autoscale=autoscale, seed=0)
    stream = poisson_stream(np.random.default_rng(0), qps=2.0,
                            num_requests=24, prompt_tokens=64,
                            deadline_s=None)
    return gateway.run(stream)


class TestGatewayIntegration:
    def test_autoscaled_run_conserves_requests(self):
        report = _tiny_run(AutoscaleConfig())
        assert report.lost == 0
        assert report.offered == (report.completed + report.shed
                                  + report.failed)
        assert report.autoscale is not None
        payload = json.loads(report.to_json())
        assert "autoscale" in payload

    def test_legacy_report_has_no_autoscale_key(self):
        report = _tiny_run(None)
        assert report.autoscale is None
        assert "autoscale" not in json.loads(report.to_json())

    def test_autoscaled_rerun_is_byte_identical(self):
        assert _tiny_run(AutoscaleConfig()).to_json() == \
               _tiny_run(AutoscaleConfig()).to_json()

    def test_burst_after_economy_downshift_survives(self):
        """Review regression: a burst landing while a min_active
        survivor sits in economy mode must queue behind the drained
        upshift instead of tripping set_power_mode's busy guard."""
        fleet = build_fleet(3, mix="balanced", max_batch_size=4)
        gateway = FleetGateway(fleet, policy="least-outstanding",
                               autoscale=AutoscaleConfig(), seed=0)
        stream, rid = [], 0
        # A sparse trickle through a two-minute trough: the fleet
        # scales down to min_active and DVFS-downshifts the survivor.
        for i in range(8):
            stream.append(FleetRequest(GenerationRequest(rid, 64, 32),
                                       arrival_s=2.0 + 15.0 * i))
            rid += 1
        # Then a 20-request flash crowd.
        for i in range(20):
            stream.append(FleetRequest(GenerationRequest(rid, 64, 64),
                                       arrival_s=130.0 + 0.05 * i))
            rid += 1
        report = gateway.run(stream)
        assert report.lost == 0
        assert report.offered == (report.completed + report.shed
                                  + report.failed)
        # The scenario actually armed: the survivor was downshifted.
        assert report.autoscale.dvfs_switches >= 1

    def test_set_power_mode_requires_idle_device(self):
        fleet = build_fleet(2, mix="maxn", max_batch_size=4)
        device = fleet[0]
        device.inject(GenerationRequest(0, 64, 32), 0.0)
        with pytest.raises(RuntimeError, match="outstanding"):
            device.set_power_mode("30W")

    def test_set_power_mode_switches_and_counts(self):
        device = build_fleet(2, mix="maxn", max_batch_size=4)[0]
        assert device.spec.power_mode == "MAXN"
        device.set_power_mode("30W")
        assert device.spec.power_mode == "30W"
        assert device.dvfs_switches == 1
        device.set_power_mode("30W")            # no-op
        assert device.dvfs_switches == 1
        with pytest.raises(ValueError):
            device.set_power_mode("9000W")
