"""Tests for Chrome-trace export and the new evaluator reporting."""

import json

import numpy as np
import pytest

from repro.engine.request import GenerationRequest
from repro.engine.trace import build_trace, save_trace
from repro.evaluation.evaluator import Evaluator
from repro.evaluation.metrics import bootstrap_confidence_interval
from repro.generation.control import base_control
from repro.models.registry import get_model


class TestTraceExport:
    def test_events_cover_all_phases(self, engine_8b):
        events = build_trace(engine_8b, GenerationRequest(0, 200, 48))
        spans = [e for e in events if e["ph"] == "X"]
        counters = [e for e in events if e["ph"] == "C"]
        assert spans[0]["name"] == "prefill"
        assert any(e["name"].startswith("decode") for e in spans)
        assert counters

    def test_spans_are_contiguous(self, engine_8b):
        events = build_trace(engine_8b, GenerationRequest(0, 200, 64))
        spans = [e for e in events if e["ph"] == "X"]
        for earlier, later in zip(spans, spans[1:]):
            assert later["ts"] == pytest.approx(
                earlier["ts"] + earlier["dur"], rel=1e-9)

    def test_total_duration_matches_streaming(self, engine_8b):
        from repro.engine.streaming import streaming_metrics
        request = GenerationRequest(0, 200, 64)
        events = build_trace(engine_8b, request)
        spans = [e for e in events if e["ph"] == "X"]
        total_us = spans[-1]["ts"] + spans[-1]["dur"]
        metrics = streaming_metrics(engine_8b, request)
        assert total_us / 1e6 == pytest.approx(metrics.total_s, rel=1e-6)

    def test_save_trace_is_valid_json(self, engine_8b, tmp_path):
        path = save_trace(engine_8b, GenerationRequest(0, 100, 32),
                          tmp_path / "trace.json")
        payload = json.loads(path.read_text())
        assert payload["traceEvents"]
        assert payload["otherData"]["model"] == "DSR1-Llama-8B"

    def test_parallel_rejected(self, engine_8b):
        with pytest.raises(ValueError):
            build_trace(engine_8b, GenerationRequest(0, 100, 32, n=2))


class TestSubjectBreakdown:
    @pytest.fixture(scope="class")
    def result(self):
        from repro.workloads.mmlu_redux import mmlu_redux
        evaluator = Evaluator(mmlu_redux(seed=0, size=400), seed=0)
        return evaluator.evaluate(get_model("dsr1-llama-8b"), base_control())

    def test_covers_all_subjects(self, result):
        breakdown = result.accuracy_by_subject()
        assert set(breakdown) == {"humanities", "social-sciences", "stem",
                                  "professional"}

    def test_subject_mean_matches_overall(self, result):
        data = result.per_question
        weighted = sum(
            result.accuracy_by_subject()[s] * list(data.subjects).count(s)
            for s in set(data.subjects)
        ) / len(data.subjects)
        assert weighted == pytest.approx(result.accuracy, abs=1e-9)

    def test_stem_harder_than_humanities(self, result):
        # The difficulty mix skews STEM hard (workloads.mmlu_redux).
        breakdown = result.accuracy_by_subject()
        assert breakdown["stem"] < breakdown["humanities"]

    def test_sampled_accuracy_near_exact(self, result):
        sampled = result.sampled_accuracy(seed=7)
        assert sampled == pytest.approx(result.accuracy, abs=0.06)

    def test_sampled_accuracy_deterministic(self, result):
        assert result.sampled_accuracy(seed=3) == result.sampled_accuracy(seed=3)


class TestBootstrapCi:
    def test_contains_true_mean(self, rng):
        values = rng.random(2000)
        lo, hi = bootstrap_confidence_interval(values, seed=1)
        assert lo < values.mean() < hi

    def test_width_shrinks_with_n(self, rng):
        small = rng.random(100)
        large = rng.random(10_000)
        lo_s, hi_s = bootstrap_confidence_interval(small, seed=1)
        lo_l, hi_l = bootstrap_confidence_interval(large, seed=1)
        assert (hi_l - lo_l) < (hi_s - lo_s)

    def test_validation(self):
        with pytest.raises(ValueError):
            bootstrap_confidence_interval(np.array([]))
        with pytest.raises(ValueError):
            bootstrap_confidence_interval(np.ones(5), confidence=1.5)
