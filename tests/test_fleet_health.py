"""Breaker state machine, health scores, and the brownout ladder.

The hypothesis suite drives :class:`CircuitBreaker` through arbitrary
seeded traffic/failure sequences and asserts the machine only ever
takes edges in :data:`LEGAL_TRANSITIONS` — the invariant the gateway's
self-healing rests on.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.engine.request import GenerationRequest
from repro.fleet import (
    BreakerState,
    BrownoutConfig,
    BrownoutController,
    CircuitBreaker,
    DeviceHealth,
    HealthConfig,
)
from repro.fleet.brownout import MAX_TIER
from repro.fleet.health import LEGAL_TRANSITIONS

# One observation fed to the breaker: a completion (with latency),
# a failure, or a (consuming) admission attempt.
_ops = st.lists(
    st.one_of(
        st.tuples(st.just("success"), st.floats(0.1, 120.0)),
        st.tuples(st.just("failure"), st.just(0.0)),
        st.tuples(st.just("allow"), st.just(0.0)),
    ),
    min_size=1, max_size=60)


def _drive(breaker, ops, dt=1.0):
    """Replay an op sequence at fixed time steps; returns final time."""
    t = 0.0
    for op, value in ops:
        t += dt
        if op == "success":
            breaker.record_success(t, value)
        elif op == "failure":
            breaker.record_failure(t)
        else:
            breaker.allow(t)
    return t


class TestBreakerStateMachine:
    @given(ops=_ops, seed=st.integers(0, 2 ** 32 - 1))
    @settings(max_examples=200, deadline=None)
    def test_only_legal_transitions(self, ops, seed):
        breaker = CircuitBreaker(seed=seed)
        _drive(breaker, ops)
        for _, src, dst in breaker.transitions:
            assert (src, dst) in LEGAL_TRANSITIONS

    @given(ops=_ops, seed=st.integers(0, 2 ** 32 - 1))
    @settings(max_examples=200, deadline=None)
    def test_transitions_chain(self, ops, seed):
        breaker = CircuitBreaker(seed=seed)
        _drive(breaker, ops)
        state = BreakerState.CLOSED
        for _, src, dst in breaker.transitions:
            assert src == state
            state = dst
        assert state == breaker.state

    @given(ops=_ops, seed=st.integers(0, 2 ** 32 - 1))
    @settings(max_examples=100, deadline=None)
    def test_same_seed_replays_identically(self, ops, seed):
        a = CircuitBreaker(seed=seed)
        b = CircuitBreaker(seed=seed)
        _drive(a, ops)
        _drive(b, ops)
        assert a.transitions == b.transitions
        assert a.state == b.state

    def test_illegal_edge_raises(self):
        breaker = CircuitBreaker()
        with pytest.raises(RuntimeError):
            breaker._move(0.0, BreakerState.HALF_OPEN)  # CLOSED -> HALF_OPEN

    def test_consecutive_failures_trip_open(self):
        breaker = CircuitBreaker(HealthConfig(failure_threshold=3))
        for t in (1.0, 2.0):
            breaker.record_failure(t)
            assert breaker.state is BreakerState.CLOSED
        breaker.record_failure(3.0)
        assert breaker.state is BreakerState.OPEN
        assert not breaker.admits(3.1)

    def test_success_resets_failure_streak(self):
        breaker = CircuitBreaker(HealthConfig(failure_threshold=2))
        breaker.record_failure(1.0)
        breaker.record_success(2.0, 1.0)
        breaker.record_failure(3.0)
        assert breaker.state is BreakerState.CLOSED

    def test_latency_spikes_trip_open(self):
        config = HealthConfig(latency_spike_s=10.0, spike_threshold=3)
        breaker = CircuitBreaker(config)
        for t in (1.0, 2.0, 3.0):
            breaker.record_success(t, 50.0)
        assert breaker.state is BreakerState.OPEN

    def test_probe_successes_close_the_breaker(self):
        config = HealthConfig(failure_threshold=1, cooldown_s=1.0,
                              cooldown_jitter=0.0, max_probes=2,
                              probe_successes=2)
        breaker = CircuitBreaker(config)
        breaker.record_failure(0.0)
        assert breaker.state is BreakerState.OPEN
        assert not breaker.admits(0.5)       # still cooling down
        assert breaker.allow(2.0)            # -> HALF_OPEN, probe 1
        assert breaker.state is BreakerState.HALF_OPEN
        assert breaker.allow(2.1)            # probe 2
        assert not breaker.allow(2.2)        # probe budget exhausted
        breaker.record_success(3.0, 1.0)
        breaker.record_success(3.5, 1.0)
        assert breaker.state is BreakerState.CLOSED

    def test_probe_failure_reopens(self):
        config = HealthConfig(failure_threshold=1, cooldown_s=1.0,
                              cooldown_jitter=0.0)
        breaker = CircuitBreaker(config)
        breaker.record_failure(0.0)
        assert breaker.allow(2.0)
        breaker.record_failure(2.5)
        assert breaker.state is BreakerState.OPEN
        edges = [(src, dst) for _, src, dst in breaker.transitions]
        assert edges == [
            (BreakerState.CLOSED, BreakerState.OPEN),
            (BreakerState.OPEN, BreakerState.HALF_OPEN),
            (BreakerState.HALF_OPEN, BreakerState.OPEN),
        ]

    def test_admits_does_not_consume_probes(self):
        config = HealthConfig(failure_threshold=1, cooldown_s=1.0,
                              cooldown_jitter=0.0, max_probes=1,
                              probe_successes=1)
        breaker = CircuitBreaker(config)
        breaker.record_failure(0.0)
        for _ in range(10):                  # candidate checks are free
            assert breaker.admits(2.0)
        assert breaker.allow(2.0)            # the one real probe
        assert not breaker.allow(2.1)

    def test_half_open_probe_times_are_seed_deterministic(self):
        def reopen_time(seed):
            breaker = CircuitBreaker(
                HealthConfig(failure_threshold=1, cooldown_jitter=1.0),
                seed=seed)
            breaker.record_failure(0.0)
            t = 0.0
            while not breaker.admits(t):
                t += 1e-3
            return t

        assert reopen_time(7) == reopen_time(7)
        # Jitter decorrelates devices: distinct seeds probe at
        # distinct times (cooldown in [2, 4) at jitter 1.0).
        assert reopen_time(7) != reopen_time(8)


class TestDeviceHealth:
    def test_breaker_seed_derives_from_name(self):
        a = DeviceHealth("edge-00", seed=0)
        b = DeviceHealth("edge-00", seed=0)
        c = DeviceHealth("edge-01", seed=0)
        assert a.breaker._rng.bit_generator.state == \
            b.breaker._rng.bit_generator.state
        assert a.breaker._rng.bit_generator.state != \
            c.breaker._rng.bit_generator.state

    def test_score_decays_with_heartbeat_age(self):
        health = DeviceHealth("edge-00",
                              HealthConfig(heartbeat_timeout_s=10.0))
        health.heartbeat(0.0)
        assert health.score(0.0) == pytest.approx(1.0)
        assert health.score(5.0) == pytest.approx(0.5)
        assert health.score(20.0) == 0.0

    def test_score_penalises_slow_completions(self):
        health = DeviceHealth("edge-00",
                              HealthConfig(latency_spike_s=10.0))
        health.observe_completion(0.0, 40.0)
        assert health.score(0.0) == pytest.approx(0.25)

    def test_ewma_folds_completions(self):
        health = DeviceHealth("edge-00", HealthConfig(ewma_alpha=0.5))
        health.observe_completion(0.0, 10.0)
        health.observe_completion(1.0, 20.0)
        assert health.latency_ewma_s == pytest.approx(15.0)

    def test_routable_tracks_breaker(self):
        health = DeviceHealth("edge-00",
                              HealthConfig(failure_threshold=1))
        assert health.routable(0.0)
        health.observe_failure(0.0)
        assert not health.routable(0.1)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            HealthConfig(failure_threshold=0)
        with pytest.raises(ValueError):
            HealthConfig(probe_successes=3, max_probes=2)
        with pytest.raises(ValueError):
            HealthConfig(ewma_alpha=0.0)


class TestBrownoutLadder:
    def test_climbs_one_tier_per_observation(self):
        controller = BrownoutController()
        controller.observe(0.0, 100.0)       # way past every threshold
        assert controller.tier == 1
        controller.observe(1.0, 100.0)
        assert controller.tier == 2
        controller.observe(2.0, 100.0)
        assert controller.tier == MAX_TIER
        controller.observe(3.0, 100.0)       # already at the top
        assert controller.tier == MAX_TIER

    def test_hysteresis_holds_between_thresholds(self):
        config = BrownoutConfig(enter_pressure=(2.0, 4.0, 6.0),
                                exit_pressure=(1.5, 3.0, 4.5))
        controller = BrownoutController(config)
        controller.observe(0.0, 2.5)
        assert controller.tier == 1
        controller.observe(1.0, 1.8)         # between exit and enter
        assert controller.tier == 1
        controller.observe(2.0, 1.0)         # below exit
        assert controller.tier == 0

    def test_recovery_is_read_off_the_transition_log(self):
        controller = BrownoutController()
        controller.observe(0.0, 100.0)
        controller.observe(1.0, 100.0)
        assert controller.recovered_at() is None   # still degraded
        controller.observe(5.0, 0.0)
        controller.observe(6.0, 0.0)
        assert controller.tier == 0
        assert controller.recovered_at() == 6.0
        assert controller.max_tier_reached() == 2

    def test_never_degraded_has_no_recovery_time(self):
        controller = BrownoutController()
        controller.observe(0.0, 0.5)
        assert controller.recovered_at() is None
        assert controller.max_tier_reached() == 0

    def test_tier1_trims_budgets(self):
        controller = BrownoutController(
            BrownoutConfig(trim_fraction=0.5, min_budget_tokens=16))
        controller.observe(0.0, 100.0)
        trimmed = controller.admit(GenerationRequest(0, 100, 200))
        assert trimmed.max_new_tokens == 100
        assert controller.trimmed == 1

    def test_tier2_trims_harder(self):
        controller = BrownoutController(
            BrownoutConfig(trim_fraction=0.5, deep_trim_fraction=0.25))
        controller.observe(0.0, 100.0)
        controller.observe(1.0, 100.0)
        trimmed = controller.admit(GenerationRequest(0, 100, 200))
        assert trimmed.max_new_tokens == 50

    def test_trim_never_raises_an_existing_budget(self):
        controller = BrownoutController()
        controller.observe(0.0, 100.0)
        request = GenerationRequest(0, 100, 200, max_new_tokens=24)
        admitted = controller.admit(request)
        # The trim applies to the *effective* stop length (already 24
        # here), so the result can only shrink the budget.
        assert admitted.max_new_tokens <= 24

    def test_trim_respects_the_floor(self):
        controller = BrownoutController(
            BrownoutConfig(trim_fraction=0.6, min_budget_tokens=16))
        controller.observe(0.0, 100.0)
        trimmed = controller.admit(GenerationRequest(0, 100, 20))
        assert trimmed.max_new_tokens == 16

    def test_tier0_admits_untouched(self):
        controller = BrownoutController()
        request = GenerationRequest(0, 100, 200)
        assert controller.admit(request) is request
        assert controller.trimmed == 0

    def test_shed_and_downgrade_tiers(self):
        controller = BrownoutController(
            BrownoutConfig(downgrade_models=("dsr1-qwen-1.5b-awq-w4",)))
        assert not controller.should_shed()
        assert not controller.prefers_downgrade()
        for t in range(MAX_TIER):
            controller.observe(float(t), 100.0)
        assert controller.should_shed()
        assert controller.prefers_downgrade()

    def test_config_validation(self):
        with pytest.raises(ValueError):
            BrownoutConfig(enter_pressure=(4.0, 2.0, 6.0))
        with pytest.raises(ValueError):
            BrownoutConfig(exit_pressure=(2.5, 3.0, 4.5))  # >= enter[0]
        with pytest.raises(ValueError):
            BrownoutConfig(trim_fraction=0.3, deep_trim_fraction=0.6)
        with pytest.raises(ValueError):
            BrownoutConfig(min_budget_tokens=0)
