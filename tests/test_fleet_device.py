"""Per-device fleet wrapper: specs, power modes, prefix cache, crashes."""

import pytest

from repro.engine.request import GenerationRequest
from repro.fleet import FLEET_MIXES, DeviceSpec, FleetDevice, build_fleet


def _request(i=0, prompt=100, output=64):
    return GenerationRequest(i, prompt, output)


def _serve(device, count=4, gap_s=1.0):
    for i in range(count):
        device.inject(_request(i), arrival_s=i * gap_s)
    device.drain()
    report = device.report()
    device.release()
    return report


class TestDeviceSpec:
    def test_rejects_unknown_power_mode(self):
        with pytest.raises(ValueError):
            DeviceSpec(name="edge-00", power_mode="11W")

    def test_label_names_model_and_mode(self):
        spec = DeviceSpec(name="edge-00", power_mode="30W")
        assert spec.label == "dsr1-qwen-1.5b@30W"


class TestPowerModes:
    def test_capped_mode_is_slower_than_maxn(self):
        fast = _serve(FleetDevice(DeviceSpec(name="a", power_mode="MAXN")))
        slow = _serve(FleetDevice(DeviceSpec(name="a", power_mode="15W")))
        assert slow.wallclock_s > fast.wallclock_s
        assert slow.completed == fast.completed == 4

    def test_predictions_price_the_scaled_soc(self):
        # The ETA estimate must be honest about power capping: the same
        # request is predicted slower on a capped box.
        fast = FleetDevice(DeviceSpec(name="a", power_mode="MAXN"))
        slow = FleetDevice(DeviceSpec(name="b", power_mode="30W"))
        probe = _request(0)
        assert (slow.predicted_completion_s(probe, 0.0)
                > fast.predicted_completion_s(probe, 0.0))
        fast.release()
        slow.release()


class TestPrefixCache:
    def _sticky(self, mb):
        device = FleetDevice(DeviceSpec(name="a", prefix_cache_mb=mb))
        for i in range(4):
            device.inject(_request(i), arrival_s=float(i),
                          session="s0", prefix_tokens=64)
        device.drain()
        device.report()
        hits, misses = device.run.prefix_hits, device.run.prefix_misses
        device.release()
        return hits, misses

    def test_repeat_session_hits_after_first_miss(self):
        hits, misses = self._sticky(mb=64.0)
        assert misses == 1 and hits == 3

    def test_no_cache_means_no_hits(self):
        hits, misses = self._sticky(mb=0.0)
        assert hits == 0

    def test_cached_prefix_reduces_wallclock(self):
        # Long prompts, so the suffix-only prefill saving dominates the
        # multi-token epoch quantization noise.
        def run(mb):
            device = FleetDevice(DeviceSpec(name="a", prefix_cache_mb=mb))
            for i in range(4):
                device.inject(_request(i, prompt=2000), arrival_s=2.0 * i,
                              session="s0", prefix_tokens=1600)
            device.drain()
            report = device.report()
            device.release()
            return report

        assert run(256.0).wallclock_s < run(0.0).wallclock_s


class TestCrashes:
    def test_crash_evacuates_queued_work(self):
        device = FleetDevice(DeviceSpec(name="a"))
        for i in range(4):
            device.inject(_request(i), arrival_s=0.0)
        orphans = device.crash(0.0, until=5.0)
        assert len(orphans) == 4
        assert device.evacuated == 4 and device.crashes == 1
        assert device.is_down(1.0) and not device.is_down(5.0)
        device.drain()
        assert device.report().completed == 0
        device.release()

    def test_orphans_keep_arrival_and_deadline(self):
        device = FleetDevice(DeviceSpec(name="a"))
        device.inject(_request(0), arrival_s=0.25, deadline_s=9.0)
        (request, state), = device.crash(1.0, until=4.0)
        assert request.request_id == 0
        assert state.first_arrival_s == 0.25
        assert state.deadline_s == 9.0
        device.release()

    def test_crash_while_down_extends_outage(self):
        device = FleetDevice(DeviceSpec(name="a"))
        assert device.crash(0.0, until=5.0) == []
        assert device.crash(2.0, until=8.0) == []
        assert device.down_until() == 8.0
        assert device.crashes == 2
        device.release()

    def test_no_energy_accrues_while_down(self):
        device = FleetDevice(DeviceSpec(name="a"))
        device.crash(0.0, until=10.0)
        device.advance_to(7.0)
        device.drain()
        assert device.report().energy_joules == 0.0
        device.release()


class TestRoutingSignals:
    def test_outstanding_counts_queued_work(self):
        device = FleetDevice(DeviceSpec(name="a"))
        assert device.outstanding_requests == 0
        device.inject(_request(0), arrival_s=0.0)
        device.inject(_request(1), arrival_s=0.0)
        assert device.outstanding_requests == 2
        assert device.outstanding_decode_tokens() > 0
        device.release()

    def test_predicted_completion_grows_with_backlog(self):
        idle = FleetDevice(DeviceSpec(name="a"))
        busy = FleetDevice(DeviceSpec(name="b"))
        for i in range(6):
            busy.inject(_request(i), arrival_s=0.0)
        probe = _request(99)
        assert (busy.predicted_completion_s(probe, 0.0)
                > idle.predicted_completion_s(probe, 0.0))
        idle.release()
        busy.release()

    def test_downtime_penalizes_prediction(self):
        device = FleetDevice(DeviceSpec(name="a"))
        base = device.predicted_completion_s(_request(0), 0.0)
        device.crash(0.0, until=20.0)
        assert device.predicted_completion_s(_request(0), 0.0) >= base + 19.0
        device.release()


class TestBuildFleet:
    def test_mix_cycles_power_modes(self):
        fleet = build_fleet(4, mix="balanced")
        assert [d.spec.power_mode for d in fleet] == \
            ["MAXN", "30W", "MAXN", "30W"]
        for device in fleet:
            device.release()

    def test_rejects_unknown_mix_and_bad_count(self):
        with pytest.raises(ValueError):
            build_fleet(2, mix="turbo")
        with pytest.raises(ValueError):
            build_fleet(0)

    def test_every_named_mix_builds(self):
        for mix in FLEET_MIXES:
            for device in build_fleet(2, mix=mix):
                device.release()
