"""Tests for arrival-trace generators and their effect on serving."""

import numpy as np
import pytest

from repro.engine.engine import InferenceEngine
from repro.engine.request import GenerationRequest
from repro.engine.server import ServingSimulator
from repro.models.registry import get_model
from repro.workloads.traces import (
    ArrivalTrace,
    bursty_trace,
    diurnal_trace,
    poisson_trace,
)


class TestGenerators:
    def test_poisson_mean_rate(self, rng):
        trace = poisson_trace(rng, qps=2.0, count=2000)
        assert trace.mean_qps == pytest.approx(2.0, rel=0.1)

    def test_poisson_sorted(self, rng):
        trace = poisson_trace(rng, qps=1.0, count=100)
        assert (np.diff(trace.arrival_s) >= 0).all()

    def test_bursty_mean_matches_but_peak_exceeds(self, rng):
        steady = poisson_trace(rng, qps=0.5, count=400)
        bursty = bursty_trace(rng, qps=0.5, count=400, burst_size=8)
        assert bursty.mean_qps == pytest.approx(steady.mean_qps, rel=0.4)
        assert bursty.peak_qps(window_s=2.0) > 2 * steady.peak_qps(window_s=2.0)

    def test_diurnal_rate_varies(self, rng):
        trace = diurnal_trace(rng, base_qps=1.0, count=1500, period_s=200.0)
        # Rate in peak windows well above trough windows.
        arr = trace.arrival_s
        counts, _ = np.histogram(arr, bins=int(trace.span_s // 25))
        assert counts.max() > 2 * max(counts.min(), 1)

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            poisson_trace(rng, qps=0.0, count=10)
        with pytest.raises(ValueError):
            bursty_trace(rng, qps=1.0, count=10, burst_size=0)
        with pytest.raises(ValueError):
            diurnal_trace(rng, base_qps=1.0, count=10, peak_ratio=0.5)
        with pytest.raises(ValueError):
            ArrivalTrace("bad", np.array([2.0, 1.0]))

    def test_trace_len(self, rng):
        assert len(poisson_trace(rng, 1.0, 50)) == 50


class TestServingUnderTraces:
    @pytest.fixture(scope="class")
    def simulator(self):
        return ServingSimulator(InferenceEngine(get_model("dsr1-qwen-1.5b")),
                                max_batch_size=4)

    def test_bursty_load_has_worse_tail(self, simulator):
        rng = np.random.default_rng(5)
        count = 48
        requests = [GenerationRequest(i, 100, 128) for i in range(count)]
        steady = poisson_trace(rng, qps=0.3, count=count)
        burst = bursty_trace(np.random.default_rng(5), qps=0.3, count=count,
                             burst_size=12)
        steady_report = simulator.run(requests, steady.arrival_s)
        burst_report = simulator.run(requests, burst.arrival_s)
        assert (burst_report.latency_percentile(95)
                > steady_report.latency_percentile(95))

    def test_all_served_under_every_trace(self, simulator, rng):
        count = 30
        requests = [GenerationRequest(i, 100, 64) for i in range(count)]
        for trace in (poisson_trace(rng, 0.5, count),
                      bursty_trace(rng, 0.5, count),
                      diurnal_trace(rng, 0.5, count)):
            report = simulator.run(requests, trace.arrival_s)
            assert report.completed == count
