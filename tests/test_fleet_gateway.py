"""Gateway routing policies, conservation, and fleet planning."""

import json
import math

import numpy as np
import pytest

from repro.core.planner import fleet_pareto, plan_fleet
from repro.engine.request import GenerationRequest
from repro.fleet import (
    ROUTING_POLICIES,
    FleetGateway,
    FleetRequest,
    build_fleet,
    poisson_stream,
)


def _stream(seed=0, qps=6.0, count=24, **kwargs):
    return poisson_stream(np.random.default_rng(seed), qps, count, **kwargs)


def _run(policy, seed=0, count=24, devices=4, mix="balanced", **kwargs):
    gateway = FleetGateway(build_fleet(devices, mix=mix), policy=policy)
    return gateway.run(_stream(seed=seed, count=count, **kwargs))


class TestValidation:
    def test_rejects_empty_fleet(self):
        with pytest.raises(ValueError):
            FleetGateway([])

    def test_rejects_unknown_policy(self):
        with pytest.raises(ValueError):
            FleetGateway(build_fleet(2), policy="random")

    def test_rejects_duplicate_names(self):
        fleet = build_fleet(1) + build_fleet(1)
        with pytest.raises(ValueError):
            FleetGateway(fleet)

    def test_stream_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            poisson_stream(rng, qps=0.0, num_requests=4)
        with pytest.raises(ValueError):
            poisson_stream(rng, qps=1.0, num_requests=-1)


class TestConservation:
    @pytest.mark.parametrize("policy", ROUTING_POLICIES)
    def test_every_request_reaches_a_terminal_outcome(self, policy):
        report = _run(policy)
        assert report.completed == report.offered == 24
        assert report.lost == 0

    def test_empty_stream_is_well_formed(self):
        gateway = FleetGateway(build_fleet(2))
        report = gateway.run([])
        assert report.offered == report.completed == 0
        assert math.isnan(report.latency_percentile(95))
        assert math.isnan(report.deadline_hit_rate)


class TestPolicies:
    def test_round_robin_spreads_work_evenly(self):
        report = _run("round-robin", devices=4, count=24)
        offered = [d.report.offered for d in report.devices]
        assert offered == [6, 6, 6, 6]

    def test_latency_aware_beats_round_robin_tail(self):
        # On a heterogeneous mix, blind rotation queues work on the slow
        # boxes; prediction-aware routing shifts it and wins the tail.
        heterogeneous = dict(devices=4, mix="balanced", count=32)
        rr = _run("round-robin", **heterogeneous)
        aware = _run("latency-aware", **heterogeneous)
        assert aware.latency_percentile(95) < rr.latency_percentile(95)

    def test_energy_aware_routes_to_cheapest_prediction(self):
        fleet = build_fleet(4, mix="balanced")
        gateway = FleetGateway(fleet, policy="energy-aware")
        probe = GenerationRequest(0, 150, 192)
        cheapest = min(gateway.devices,
                       key=lambda d: (d.predicted_energy_j(probe, 0.0),
                                      d.name))
        report = gateway.run([FleetRequest(probe, arrival_s=0.0)])
        (winner,) = [d for d in report.devices if d.report.offered]
        assert winner.name == cheapest.name

    def test_energy_aware_saves_energy_vs_latency_aware(self):
        kwargs = dict(devices=4, mix="balanced", count=24)
        aware = _run("energy-aware", **kwargs)
        fast = _run("latency-aware", **kwargs)
        assert aware.energy_per_request_j < fast.energy_per_request_j

    def test_prefix_affinity_pins_sessions(self):
        fleet = build_fleet(4, prefix_cache_mb=64.0)
        gateway = FleetGateway(fleet, policy="prefix-affinity")
        report = gateway.run(_stream(count=24, sessions=3,
                                     prefix_tokens=64))
        # 3 sessions -> at most 3 devices ever see work.
        assert sum(d.report.offered > 0 for d in report.devices) <= 3

    def test_prefix_affinity_earns_cache_hits(self):
        def hits(policy):
            fleet = build_fleet(4, prefix_cache_mb=64.0)
            gateway = FleetGateway(fleet, policy=policy)
            report = gateway.run(_stream(count=24, sessions=3,
                                         prefix_tokens=64))
            return sum(d.prefix_hits for d in report.devices)

        assert hits("prefix-affinity") > hits("round-robin")

    def test_stateless_requests_still_route_under_affinity(self):
        report = _run("prefix-affinity", count=12)
        assert report.completed == 12


class TestDeterminism:
    def test_rerun_is_byte_identical(self):
        assert (_run("latency-aware").to_json()
                == _run("latency-aware").to_json())

    def test_construction_order_is_irrelevant(self):
        stream = _stream(count=16)
        reference = FleetGateway(build_fleet(4), "latency-aware").run(stream)
        shuffled = list(reversed(build_fleet(4)))
        report = FleetGateway(shuffled, "latency-aware").run(stream)
        assert report.to_json() == reference.to_json()

    def test_json_is_canonical(self):
        report = _run("round-robin", count=8)
        payload = json.loads(report.to_json())
        assert payload["lost"] == 0
        assert len(payload["served"]) == 8
        assert len(payload["devices"]) == 4


class TestFleetCost:
    def test_device_seconds_sum_across_fleet(self):
        report = _run("round-robin", count=16)
        assert report.device_seconds > report.wallclock_s
        assert report.cost_per_mtok() > 0

    def test_deadline_attainment_counts_whole_population(self):
        report = _run("latency-aware", count=16, deadline_s=30.0)
        assert 0.0 <= report.deadline_hit_rate <= 1.0


class TestFleetPlanning:
    def test_plan_covers_the_grid(self):
        points = plan_fleet(device_counts=(2,), mixes=("maxn", "balanced"),
                            policies=("round-robin",), qps=4.0,
                            num_requests=8)
        assert len(points) == 2
        assert {p.label for p in points} == {
            "2x maxn / round-robin", "2x balanced / round-robin"}

    def test_frontier_is_nonempty_subset(self):
        points = plan_fleet(device_counts=(2,), mixes=("maxn", "balanced"),
                            policies=("round-robin", "latency-aware"),
                            qps=4.0, num_requests=8)
        frontier = fleet_pareto(points)
        assert frontier and set(map(id, frontier)) <= set(map(id, points))


class TestWholeFleetDown:
    def test_arrival_during_total_outage_is_parked_not_lost(self):
        fleet = build_fleet(2)
        gateway = FleetGateway(fleet, policy="round-robin")
        for device in gateway.devices:
            device.crash(0.0, until=5.0)
        stream = [FleetRequest(GenerationRequest(0, 100, 32),
                               arrival_s=1.0)]
        report = gateway.run(stream)
        assert report.completed == 1 and report.lost == 0
        (served,) = report.served
        assert served.start_s >= 5.0
