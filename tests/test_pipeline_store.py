"""Cache correctness of the pipeline's ArtifactStore."""

import logging
import threading

import pytest

from repro.core.persistence import (
    ARTIFACT_CACHE_VERSION,
    CacheCorruptionError,
    artifact_cache_path,
    load_cached_artifact,
    load_cached_artifact_checked,
    save_cached_artifact,
)
from repro.faults.injector import FaultInjector, PipelineFaultConfig
from repro.pipeline.store import ArtifactStore, params_hash


class TestParamsHash:
    def test_stable_and_order_insensitive(self):
        assert params_hash({"a": 1, "b": 2}) == params_hash({"b": 2, "a": 1})

    def test_tuple_and_list_equivalent(self):
        assert params_hash({"sizes": (1, 2)}) == params_hash({"sizes": [1, 2]})

    def test_distinct_params_distinct_hash(self):
        assert params_hash({"size": 300}) != params_hash({"size": 3000})

    def test_empty_and_none_equal(self):
        assert params_hash(None) == params_hash({})

    def test_rejects_non_json_values(self):
        with pytest.raises(TypeError):
            params_hash({"fn": object()})


class TestMemoryTier:
    def test_same_key_returns_identical_object(self):
        store = ArtifactStore()
        first = store.get_or_compute("p", 0, {}, lambda: {"x": 1})
        second = store.get_or_compute("p", 0, {}, lambda: {"x": 1})
        assert first is second

    def test_computes_exactly_once(self):
        store = ArtifactStore()
        calls = []
        for _ in range(5):
            store.get_or_compute("p", 0, {}, lambda: calls.append(1) or 41)
        assert len(calls) == 1
        assert store.stats.misses == 1
        assert store.stats.hits == 4

    def test_different_seed_misses(self):
        store = ArtifactStore()
        a = store.get_or_compute("p", 0, {}, lambda: object())
        b = store.get_or_compute("p", 1, {}, lambda: object())
        assert a is not b
        assert store.stats.misses == 2
        assert store.stats.misses_by_producer == {"p": 2}

    def test_different_params_miss(self):
        store = ArtifactStore()
        a = store.get_or_compute("p", 0, {"size": 100}, lambda: object())
        b = store.get_or_compute("p", 0, {"size": 200}, lambda: object())
        assert a is not b
        assert store.stats.misses == 2

    def test_per_producer_counters(self):
        store = ArtifactStore()
        store.get_or_compute("a", 0, {}, lambda: 1)
        store.get_or_compute("a", 0, {}, lambda: 1)
        store.get_or_compute("b", 0, {}, lambda: 2)
        stats = store.stats
        assert stats.misses_by_producer == {"a": 1, "b": 1}
        assert stats.hits_by_producer == {"a": 1}
        assert stats.compute_seconds["a"] >= 0.0

    def test_single_flight_under_concurrency(self):
        store = ArtifactStore()
        calls = []
        gate = threading.Event()

        def compute():
            gate.wait(1.0)
            calls.append(1)
            return len(calls)

        threads = [
            threading.Thread(
                target=lambda: store.get_or_compute("p", 0, {}, compute))
            for _ in range(8)
        ]
        for thread in threads:
            thread.start()
        gate.set()
        for thread in threads:
            thread.join()
        assert len(calls) == 1
        assert store.stats.misses == 1
        assert store.stats.hits == 7


class TestDiskTier:
    def test_round_trip_across_stores(self, tmp_path):
        cold = ArtifactStore(cache_dir=tmp_path)
        value = cold.get_or_compute("p", 3, {"size": 10}, lambda: [1, 2, 3])
        warm = ArtifactStore(cache_dir=tmp_path)
        loaded = warm.get_or_compute(
            "p", 3, {"size": 10},
            lambda: pytest.fail("disk hit should not recompute"))
        assert loaded == value
        assert warm.stats.disk_hits == 1
        assert warm.stats.hits == 1
        assert warm.stats.misses == 0

    def test_key_mismatch_is_miss(self, tmp_path):
        save_cached_artifact(tmp_path, "p", 0, params_hash({}), "payload")
        assert load_cached_artifact(tmp_path, "p", 1, params_hash({})) is None
        assert load_cached_artifact(tmp_path, "q", 0, params_hash({})) is None

    def test_corrupt_file_is_miss(self, tmp_path):
        path = save_cached_artifact(tmp_path, "p", 0, "h" * 16, 42)
        path.write_bytes(b"not a pickle")
        assert load_cached_artifact(tmp_path, "p", 0, "h" * 16) is None
        store = ArtifactStore(cache_dir=tmp_path)
        assert store.get_or_compute("p", 0, {}, lambda: 7) == 7
        assert store.stats.misses == 1

    def test_stale_schema_version_is_miss(self, tmp_path, monkeypatch):
        import repro.core.persistence as persistence

        save_cached_artifact(tmp_path, "p", 0, "h" * 16, 42)
        monkeypatch.setattr(persistence, "ARTIFACT_CACHE_VERSION",
                            ARTIFACT_CACHE_VERSION + 1)
        assert load_cached_artifact(tmp_path, "p", 0, "h" * 16) is None

    def test_producer_id_sanitized_in_path(self, tmp_path):
        path = artifact_cache_path(tmp_path, "weird/id:with spaces", 0,
                                   "a" * 16)
        assert path.parent == tmp_path
        assert "/" not in path.name and ":" not in path.name

    def test_memory_tier_preferred_over_disk(self, tmp_path):
        store = ArtifactStore(cache_dir=tmp_path)
        first = store.get_or_compute("p", 0, {}, lambda: object())
        again = store.get_or_compute("p", 0, {}, lambda: object())
        assert first is again  # disk round-trip would break identity
        assert store.stats.disk_hits == 0


class TestIntegrity:
    def test_checked_load_raises_on_garbled_bytes(self, tmp_path):
        path = save_cached_artifact(tmp_path, "p", 0, "h" * 16, [1, 2])
        path.write_bytes(b"\x00rot\x00")
        with pytest.raises(CacheCorruptionError):
            load_cached_artifact_checked(tmp_path, "p", 0, "h" * 16)

    def test_checked_load_raises_on_flipped_payload_bit(self, tmp_path):
        import pickle

        path = save_cached_artifact(tmp_path, "p", 0, "h" * 16, [1, 2, 3])
        envelope = pickle.loads(path.read_bytes())
        payload = bytearray(envelope["payload_pickle"])
        payload[len(payload) // 2] ^= 0xFF
        envelope["payload_pickle"] = bytes(payload)
        path.write_bytes(pickle.dumps(envelope))
        with pytest.raises(CacheCorruptionError, match="checksum"):
            load_cached_artifact_checked(tmp_path, "p", 0, "h" * 16)

    def test_corrupt_entry_counted_and_recomputed(self, tmp_path, caplog):
        path = save_cached_artifact(tmp_path, "p", 0, params_hash({}), 41)
        path.write_bytes(b"\x00rot\x00")
        store = ArtifactStore(cache_dir=tmp_path)
        with caplog.at_level(logging.WARNING, logger="repro.pipeline.store"):
            assert store.get_or_compute("p", 0, {}, lambda: 42) == 42
        stats = store.stats
        assert stats.disk_corruptions == 1
        assert stats.corruptions_by_producer == {"p": 1}
        assert stats.misses == 1
        warnings = [r for r in caplog.records
                    if "corrupt disk cache entry" in r.message]
        assert len(warnings) == 1 and "'p'" in warnings[0].message

    def test_corruption_warning_emitted_once_per_key(self, tmp_path, caplog):
        from repro.pipeline.store import CacheKey

        store = ArtifactStore(cache_dir=tmp_path)
        exc = CacheCorruptionError(tmp_path / "x.pkl", "checksum mismatch")
        key = CacheKey("p", 0, params_hash({}))
        with caplog.at_level(logging.WARNING, logger="repro.pipeline.store"):
            store._count_corruption(key, exc)
            store._count_corruption(key, exc)
        assert store.stats.disk_corruptions == 2
        warnings = [r for r in caplog.records
                    if "corrupt disk cache entry" in r.message]
        assert len(warnings) == 1

    def test_recompute_repairs_the_disk_entry(self, tmp_path):
        path = save_cached_artifact(tmp_path, "p", 0, params_hash({}), 41)
        path.write_bytes(b"\x00rot\x00")
        store = ArtifactStore(cache_dir=tmp_path)
        assert store.get_or_compute("p", 0, {}, lambda: 42) == 42
        # The recomputed value was rewritten; a cold store now disk-hits.
        cold = ArtifactStore(cache_dir=tmp_path)
        assert cold.get_or_compute(
            "p", 0, {},
            lambda: pytest.fail("repaired entry should disk-hit")) == 42
        assert cold.stats.disk_corruptions == 0

    def test_fault_injected_corruption_round_trip(self, tmp_path):
        faults = FaultInjector(seed=0, pipeline=PipelineFaultConfig(
            cache_corrupt_rate=1.0))
        chaotic = ArtifactStore(cache_dir=tmp_path, faults=faults)
        assert chaotic.get_or_compute("p", 0, {}, lambda: 42) == 42
        # The write was garbled after the fact; a cold load detects it.
        cold = ArtifactStore(cache_dir=tmp_path)
        assert cold.get_or_compute("p", 0, {}, lambda: 42) == 42
        assert cold.stats.disk_corruptions == 1

    def test_no_cache_dir_never_counts_corruption(self):
        store = ArtifactStore()
        store.get_or_compute("p", 0, {}, lambda: 1)
        assert store.stats.disk_corruptions == 0
        assert store.stats.corruptions_by_producer == {}
