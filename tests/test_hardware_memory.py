"""Tests for the LPDDR5 memory-system model."""

import pytest

from repro.hardware.memory import MemorySpec, MemorySystem


@pytest.fixture()
def mem():
    return MemorySystem(MemorySpec(peak_bandwidth=200e9, l2_capacity=4 * 1024**2))


class TestEfficiency:
    def test_floor_for_tiny_transfers(self, mem):
        assert mem.efficiency(1) == pytest.approx(mem.spec.floor_efficiency,
                                                  rel=0.01)

    def test_asymptote_for_huge_transfers(self, mem):
        assert mem.efficiency(10e9) == pytest.approx(
            mem.spec.streaming_efficiency, rel=1e-3)

    def test_monotone_in_size(self, mem):
        sizes = [1e3, 1e5, 1e7, 1e9]
        effs = [mem.efficiency(s) for s in sizes]
        assert effs == sorted(effs)

    def test_zero_bytes_returns_floor(self, mem):
        assert mem.efficiency(0) == mem.spec.floor_efficiency

    def test_never_exceeds_one(self, mem):
        assert mem.efficiency(1e12) <= 1.0


class TestTransfers:
    def test_read_accounts_traffic(self, mem):
        mem.read(1000)
        assert mem.total_read_bytes == 1000
        assert mem.total_write_bytes == 0

    def test_write_accounts_traffic(self, mem):
        mem.write(500)
        assert mem.total_write_bytes == 500

    def test_transfer_time_positive(self, mem):
        assert mem.transfer_seconds(1e6) > 0

    def test_transfer_time_zero_for_empty(self, mem):
        assert mem.transfer_seconds(0) == 0.0

    def test_large_transfer_near_peak(self, mem):
        seconds = mem.transfer_seconds(20e9)
        ideal = 20e9 / (200e9 * mem.spec.streaming_efficiency)
        assert seconds == pytest.approx(ideal, rel=0.01)

    def test_stats_fields(self, mem):
        stats = mem.read(1 << 20)
        assert stats.nbytes == 1 << 20
        assert stats.seconds > 0
        assert stats.effective_bandwidth > 0

    def test_reset_counters(self, mem):
        mem.read(100)
        mem.write(100)
        mem.reset_counters()
        assert mem.total_read_bytes == 0
        assert mem.total_write_bytes == 0


class TestCacheResidency:
    def test_small_working_set_fits(self, mem):
        assert mem.cache_resident(1024)

    def test_llm_weights_never_fit(self, mem):
        assert not mem.cache_resident(3e9)
