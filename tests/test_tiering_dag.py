"""DAG expansion, rid scheme, dependency gating, and the coordinator."""

import pytest

from repro.tiering import (
    MAX_STAGES,
    STAGE_BRANCH,
    STAGE_PLAN,
    STAGE_VERIFY,
    TIER_DEEP,
    DagRun,
    TierAssignment,
    TieringConfig,
    build_dag,
)
from repro.workloads.agentic import AGENTIC_KINDS, DagJob, agentic_suite


def job(job_id=0, difficulty=0.5, session="user-000", deadline_s=None):
    return DagJob(job_id=job_id, arrival_s=0.0, session=session,
                  difficulty=difficulty, kind="game24", prompt_tokens=80,
                  deadline_s=deadline_s)


class TestAgenticSuite:
    def test_shapes_and_determinism(self):
        import numpy as np

        a = agentic_suite(np.random.default_rng(3), qps=2.0, jobs=20)
        b = agentic_suite(np.random.default_rng(3), qps=2.0, jobs=20)
        assert a == b
        assert len(a) == 20
        assert all(j.kind in AGENTIC_KINDS for j in a)
        assert all(0.0 <= j.difficulty <= 1.0 for j in a)
        arrivals = [j.arrival_s for j in a]
        assert arrivals == sorted(arrivals)

    def test_bad_job_rejected(self):
        with pytest.raises(ValueError):
            DagJob(job_id=0, arrival_s=0.0, session="s", difficulty=1.5,
                   kind="game24", prompt_tokens=80)
        with pytest.raises(ValueError):
            DagJob(job_id=0, arrival_s=0.0, session="s", difficulty=0.5,
                   kind="no-such-kind", prompt_tokens=80)


class TestBuildDag:
    def assignment(self, branches=3, verify=True):
        return TierAssignment(TIER_DEEP, branches, verify, 0.7, False)

    def test_plan_branches_verify_shape(self):
        config = TieringConfig()
        dag = build_dag(job(), self.assignment(), 640, config)
        kinds = [s.kind for s in dag.stages]
        assert kinds == [STAGE_PLAN, STAGE_BRANCH, STAGE_BRANCH,
                         STAGE_BRANCH, STAGE_VERIFY]

    def test_rid_scheme_unique_and_job_scoped(self):
        config = TieringConfig()
        dag = build_dag(job(job_id=5), self.assignment(), 640, config)
        rids = [s.rid for s in dag.stages]
        assert len(set(rids)) == len(rids)
        assert all(5 * MAX_STAGES <= rid < 6 * MAX_STAGES for rid in rids)

    def test_dependency_edges(self):
        config = TieringConfig()
        dag = build_dag(job(), self.assignment(), 640, config)
        plan = dag.stages[0]
        assert plan.deps == ()
        for branch in dag.stages[1:-1]:
            assert branch.deps == (plan.rid,)
        verify = dag.stages[-1]
        assert verify.deps == dag.branch_rids

    def test_deterministic_rebuild(self):
        config = TieringConfig(seed=4)
        a = build_dag(job(job_id=9), self.assignment(), 640, config)
        b = build_dag(job(job_id=9), self.assignment(), 640, config)
        assert a == b

    def test_no_verify_shape(self):
        config = TieringConfig()
        dag = build_dag(job(), self.assignment(branches=1, verify=False),
                        256, config)
        assert [s.kind for s in dag.stages] == [STAGE_PLAN, STAGE_BRANCH]

    def test_too_many_branches_rejected(self):
        config = TieringConfig()
        with pytest.raises(ValueError):
            build_dag(job(), self.assignment(branches=MAX_STAGES), 640,
                      config)


class TestDagRunCoordinator:
    def test_admit_releases_only_roots(self):
        run = DagRun(TieringConfig(predict_noise=0.0))
        verdict, released = run.admit(job(difficulty=0.9), 0.0, 0.0)
        assert verdict == "go"
        assert len(released) == 1  # the plan stage
        assert run.children_offered == 5  # plan + 3 branches + verify
        assert not run.done()

    def test_dependency_gated_release_order(self):
        run = DagRun(TieringConfig(predict_noise=0.0))
        _, released = run.admit(job(difficulty=0.9), 0.0, 0.0)
        plan_rid = released[0][0].request.request_id
        # Nothing releases while the plan is in flight.
        assert run.ready_children({}, {}, 1.0) == []
        branches = run.ready_children({plan_rid: "served"},
                                      {plan_rid: 64}, 1.0)
        assert len(branches) == 3
        branch_rids = [r.request.request_id for r, _ in branches]
        # Verify waits for every branch, not just one.
        partial = {plan_rid: "served", branch_rids[0]: "served"}
        assert run.ready_children(partial, {}, 2.0) == []
        terminal = {plan_rid: "served"}
        terminal.update({rid: "served" for rid in branch_rids})
        verify = run.ready_children(terminal, {}, 3.0)
        assert len(verify) == 1
        verify_rid = verify[0][0].request.request_id
        terminal[verify_rid] = "served"
        run.ready_children(terminal, {}, 4.0)
        assert run.done()

    def test_ladder_shed_returns_all_rids(self):
        config = TieringConfig(enter_pressure=(0.1, 0.2, 0.3),
                               exit_pressure=(0.05, 0.1, 0.15))
        run = DagRun(config)
        # One step per observation: levels 1 and 2 still admit.
        for n in range(2):
            verdict, _ = run.admit(job(job_id=n, session=f"u{n}"),
                                   float(n), 99.0)
            assert verdict == "go"
        verdict, rids = run.admit(job(job_id=2, session="u2"), 2.0, 99.0)
        assert verdict == "shed"
        assert len(rids) >= 2  # the whole planned DAG is disposed
        assert run.jobs_shed == 1
        assert run.ladder.max_level_reached() == 3

    def test_budget_shed_registers_children(self):
        run = DagRun(TieringConfig(session_token_budget=100))
        verdict, rids = run.admit(job(), 0.0, 0.0)
        assert verdict == "shed"
        # Shed children still count toward offered so conservation
        # stays exact at the fleet level.
        assert run.children_offered == len(rids) == 2

    def test_force_shed_remaining_empties_waiting(self):
        run = DagRun(TieringConfig(predict_noise=0.0))
        run.admit(job(difficulty=0.9), 0.0, 0.0)
        rids = run.force_shed_remaining()
        assert len(rids) == 4  # 3 branches + verify were dep-gated
        assert run.ready_children({}, {}, 1.0) == []

    def test_deadline_shrinks_with_release_time(self):
        run = DagRun(TieringConfig(predict_noise=0.0))
        _, released = run.admit(job(difficulty=0.9, deadline_s=30.0),
                                0.0, 0.0)
        plan_req = released[0][0]
        assert plan_req.deadline_s == pytest.approx(30.0)
        plan_rid = plan_req.request.request_id
        branches = run.ready_children({plan_rid: "served"},
                                      {plan_rid: 64}, 12.0)
        assert branches[0][0].deadline_s == pytest.approx(18.0)

    def test_refund_on_settle_tops_up_later_branch(self):
        # A tight session budget admits the first job trimmed; its
        # underspend refund then funds the branch's top-up at release.
        config = TieringConfig(session_token_budget=500, predict_noise=0.0)
        run = DagRun(config)
        _, released = run.admit(job(difficulty=0.1), 0.0, 0.0)
        plan_rid = released[0][0].request.request_id
        before = run.budget.tokens_redistributed
        branches = run.ready_children({plan_rid: "served"},
                                      {plan_rid: 8}, 1.0)
        assert branches
        assert run.budget.tokens_refunded > 0
        assert run.budget.tokens_redistributed >= before
