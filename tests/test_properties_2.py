"""Second batch of property-based tests: lengths, caching, serving."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.batch_model import BatchedDecodeLatencyModel
from repro.core.latency_model import DecodeLatencyModel
from repro.core.controller import DeadlineController
from repro.core.latency_model import PrefillLatencyModel, TotalLatencyModel
from repro.engine.engine import InferenceEngine
from repro.engine.prefix_cache import PrefixCache
from repro.engine.sampler import active_sequences_per_step
from repro.generation.control import hard_budget
from repro.generation.length import LengthModel
from repro.models.registry import get_model

_ENGINE_8B = InferenceEngine(get_model("dsr1-llama-8b"))


class TestLengthModelProperties:
    @given(st.integers(min_value=8, max_value=4096))
    @settings(max_examples=40, deadline=None)
    def test_hard_mean_never_exceeds_base(self, budget):
        lengths = LengthModel(get_model("dsr1-llama-8b"), "mmlu-redux")
        assert lengths.mean_tokens(hard_budget(budget)) <= lengths.base_mean() + 1e-9

    @given(st.integers(min_value=8, max_value=4096))
    @settings(max_examples=40, deadline=None)
    def test_l1_never_exceeds_budget(self, budget):
        lengths = LengthModel(get_model("l1-max"), "mmlu-redux")
        # Measured table entries (128/256) are themselves under budget;
        # the fallback rule must hold everywhere else.
        assert lengths.mean_tokens(hard_budget(budget)) <= budget + 1e-9

    @given(st.integers(min_value=8, max_value=4096),
           st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_samples_positive(self, budget, seed):
        lengths = LengthModel(get_model("dsr1-qwen-14b"), "mmlu-redux")
        rng = np.random.default_rng(seed)
        samples = lengths.sample(hard_budget(budget), rng, size=32)
        assert (samples >= 4).all()

    @given(st.integers(min_value=16, max_value=2048),
           st.integers(min_value=1, max_value=2048))
    @settings(max_examples=40, deadline=None)
    def test_truncation_probability_monotone(self, budget, extra):
        lengths = LengthModel(get_model("dsr1-llama-8b"), "mmlu-redux")
        assert (lengths.truncation_probability(hard_budget(budget + extra))
                <= lengths.truncation_probability(hard_budget(budget)) + 1e-12)


class TestPrefixCacheProperties:
    @given(st.lists(st.tuples(st.text(alphabet="abcdef", min_size=1,
                                      max_size=4),
                              st.integers(min_value=1, max_value=500)),
                    min_size=1, max_size=40))
    @settings(max_examples=40, deadline=None)
    def test_capacity_never_exceeded(self, inserts):
        cache = PrefixCache(capacity_bytes=500_000, kv_bytes_per_token=1000.0)
        for key, tokens in inserts:
            cache.insert(key, tokens)
            assert cache.used_bytes <= cache.capacity_bytes

    @given(st.lists(st.integers(min_value=1, max_value=400),
                    min_size=2, max_size=20))
    @settings(max_examples=30, deadline=None)
    def test_most_recent_insert_always_present(self, sizes):
        cache = PrefixCache(capacity_bytes=400_000, kv_bytes_per_token=1000.0)
        for index, tokens in enumerate(sizes):
            cache.insert(f"k{index}", tokens)
            assert f"k{index}" in cache


class TestSchedulingProperties:
    @given(st.lists(st.integers(min_value=1, max_value=200),
                    min_size=1, max_size=30),
           st.integers(min_value=1, max_value=240))
    @settings(max_examples=40, deadline=None)
    def test_active_counts_conserve_token_mass(self, stops, num_steps):
        stops_arr = np.asarray(stops)
        active = active_sequences_per_step(stops_arr, num_steps)
        # Total active-slots equals total tokens actually generated in
        # the window.
        generated = np.minimum(stops_arr, num_steps).sum()
        assert active.sum() == generated


class TestControllerProperties:
    @given(st.integers(min_value=32, max_value=2048),
           st.integers(min_value=16, max_value=2048),
           st.floats(min_value=2.0, max_value=120.0))
    @settings(max_examples=25, deadline=None)
    def test_controller_always_meets_feasible_deadlines(self, prompt,
                                                        thinking, deadline):
        latency = TotalLatencyModel(
            PrefillLatencyModel(6.42e-7, 3.3e-4, 0.081),
            DecodeLatencyModel(6.92e-7, 0.092),
        )
        controller = DeadlineController(latency)
        engine = _ENGINE_8B
        # A deadline is feasible when prefill + the answer fits.
        floor = (engine.kernels.prefill(engine.profile, prompt).seconds
                 + float(latency.decode(prompt, controller.answer_tokens))
                 + 0.5)
        if deadline < floor:
            return
        outcome = controller.run(engine, prompt, thinking, deadline)
        assert outcome.met_deadline


class TestBatchedModelProperties:
    @given(st.integers(min_value=1, max_value=128),
           st.integers(min_value=1, max_value=128))
    @settings(max_examples=40, deadline=None)
    def test_interpolation_monotone_in_batch(self, b1, b2):
        model = BatchedDecodeLatencyModel(
            (1, 16, 64),
            (DecodeLatencyModel(1e-7, 0.09),
             DecodeLatencyModel(1.6e-6, 0.11),
             DecodeLatencyModel(6.4e-6, 0.17)),
        )
        lo, hi = sorted((b1, b2))
        assert model.tbt(512, lo) <= model.tbt(512, hi) + 1e-12
