"""Tests for the kernel-fusion extension and accuracy uncertainty."""

import pytest

from repro.extensions.fusion import (
    FUSED_ATTENTION_EFFICIENCY,
    fused_decode_report,
    fused_prefill_report,
    fusion_sweep,
)


class TestFusion:
    def test_prefill_speedup_grows_with_length(self, engine_8b):
        # The quadratic attention term dominates at long inputs, so the
        # fused-attention win grows with I.
        reports = {r.seq_len: r for r in fusion_sweep(engine_8b)}
        assert (reports[256].speedup < reports[1024].speedup
                < reports[4096].speedup)

    def test_multi_x_at_long_inputs(self, engine_8b):
        assert fused_prefill_report(engine_8b, 4096).speedup > 3.0

    def test_decode_barely_moves(self, engine_8b):
        # Weight streaming dominates decode; fusion trims overheads only.
        report = fused_decode_report(engine_8b)
        assert 1.0 <= report.speedup < 1.15

    def test_never_slower(self, engine_8b):
        for report in fusion_sweep(engine_8b):
            assert report.speedup >= 1.0
        assert fused_decode_report(engine_8b).speedup >= 1.0

    def test_fused_efficiency_far_above_baseline(self, engine_8b):
        assert (FUSED_ATTENTION_EFFICIENCY
                > 10 * engine_8b.calibration.attention_efficiency)

    def test_rejects_bad_input(self, engine_8b):
        with pytest.raises(ValueError):
            fused_prefill_report(engine_8b, 0)


class TestAccuracyUncertainty:
    @pytest.fixture(scope="class")
    def results(self):
        from repro.evaluation.evaluator import Evaluator
        from repro.generation.control import base_control
        from repro.models.registry import get_model
        from repro.workloads.mmlu_redux import mmlu_redux
        small = Evaluator(mmlu_redux(seed=0, size=200), seed=0).evaluate(
            get_model("dsr1-llama-8b"), base_control())
        large = Evaluator(mmlu_redux(seed=0, size=2000), seed=0).evaluate(
            get_model("dsr1-llama-8b"), base_control())
        return small, large

    def test_stderr_positive_and_small(self, results):
        small, _ = results
        assert 0.0 < small.accuracy_stderr < 0.1

    def test_stderr_shrinks_with_suite_size(self, results):
        small, large = results
        assert large.accuracy_stderr < small.accuracy_stderr

    def test_sampled_accuracy_within_3_sigma(self, results):
        _, large = results
        for seed in range(5):
            sampled = large.sampled_accuracy(seed=seed)
            assert abs(sampled - large.accuracy) < 4 * large.accuracy_stderr
