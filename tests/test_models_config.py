"""Tests for transformer architecture configs and FLOP/byte accounting."""

import pytest

from repro.models.config import ModelFamily, TransformerConfig


class TestParameterCounts:
    """Parameter counts must match the public model cards."""

    def test_dsr1_qwen_1p5b(self, model_1p5b):
        assert model_1p5b.param_count == pytest.approx(1.54e9, rel=0.03)

    def test_dsr1_llama_8b(self, model_8b):
        assert model_8b.param_count == pytest.approx(8.03e9, rel=0.02)

    def test_dsr1_qwen_14b(self, model_14b):
        assert model_14b.param_count == pytest.approx(14.8e9, rel=0.02)

    def test_qwen_7b(self):
        from repro.models.registry import get_model
        assert get_model("qwen2.5-7b-it").param_count == pytest.approx(
            7.6e9, rel=0.03)

    def test_tied_embeddings_reduce_params(self, model_1p5b):
        # Qwen2.5-1.5B ties its LM head to the embedding table.
        assert model_1p5b.lm_head_params == 0
        assert model_1p5b.tied_embeddings

    def test_untied_lm_head(self, model_8b):
        assert model_8b.lm_head_params == model_8b.vocab_size * model_8b.d_model


class TestByteAccounting:
    def test_streamed_excludes_input_embedding(self, model_8b):
        assert model_8b.streamed_params < model_8b.param_count

    def test_weight_bytes_fp16(self, model_8b):
        assert model_8b.weight_bytes == pytest.approx(
            model_8b.streamed_params * 2.0)

    def test_kv_bytes_8b(self, model_8b):
        # 2 (K,V) * 32 layers * 8 kv-heads * 128 head-dim * 2 bytes.
        assert model_8b.kv_bytes_per_token == 131072

    def test_kv_bytes_1p5b_gqa(self, model_1p5b):
        # Aggressive GQA: only 2 kv-heads.
        assert model_1p5b.kv_bytes_per_token == 2 * 28 * 2 * 128 * 2

    def test_kv_cache_scales_with_context_and_batch(self, model_8b):
        single = model_8b.kv_cache_bytes(100, 1)
        assert model_8b.kv_cache_bytes(200, 1) == pytest.approx(2 * single)
        assert model_8b.kv_cache_bytes(100, 4) == pytest.approx(4 * single)

    def test_linear_flops_about_twice_params(self, model_8b):
        ratio = model_8b.linear_flops_per_token / model_8b.streamed_params
        assert ratio == pytest.approx(2.0)

    def test_attention_flops_coefficient(self, model_8b):
        # 4 * layers * q_dim = 4 * 32 * 4096.
        assert model_8b.attention_flops_per_sq_token == 4 * 32 * 4096

    def test_resident_at_least_streamed(self, dsr1_models):
        for model in dsr1_models:
            assert model.resident_bytes >= model.weight_bytes


class TestValidation:
    def _base_kwargs(self):
        return dict(
            name="m", display_name="M", family=ModelFamily.REASONING,
            num_layers=2, d_model=64, num_heads=4, num_kv_heads=2,
            head_dim=16, ffn_dim=128, vocab_size=1000,
        )

    def test_heads_must_divide(self):
        kwargs = self._base_kwargs()
        kwargs["num_kv_heads"] = 3
        with pytest.raises(ValueError, match="multiple"):
            TransformerConfig(**kwargs)

    @pytest.mark.parametrize("field", ["num_layers", "d_model", "vocab_size"])
    def test_positive_dimensions_required(self, field):
        kwargs = self._base_kwargs()
        kwargs[field] = 0
        with pytest.raises(ValueError):
            TransformerConfig(**kwargs)

    def test_is_reasoning_flag(self, model_8b):
        assert model_8b.is_reasoning
        from repro.models.registry import get_model
        assert not get_model("llama3.1-8b-it").is_reasoning
        assert get_model("l1-max").is_reasoning


class TestExecutionProfile:
    def test_fields_transfer(self, model_8b):
        profile = model_8b.execution_profile()
        assert profile.name == model_8b.name
        assert profile.weight_bytes == model_8b.weight_bytes
        assert profile.kv_bytes_per_token == model_8b.kv_bytes_per_token
        assert profile.calibration_key == model_8b.calibration_key
        assert profile.compute_dtype == "fp16"

    def test_quantized_profile_dtype(self):
        from repro.models.registry import get_model
        profile = get_model("dsr1-llama-8b-awq-w4").execution_profile()
        assert profile.compute_dtype == "int8"
