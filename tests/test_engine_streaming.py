"""Tests for streaming generation metrics (TTFT / TPOT)."""

import pytest

from repro.engine.request import GenerationRequest
from repro.engine.streaming import stream, streaming_metrics


class TestStream:
    def test_one_event_per_token(self, engine_8b):
        events = list(stream(engine_8b, GenerationRequest(0, 100, 32)))
        assert len(events) == 32
        assert [e.index for e in events] == list(range(32))

    def test_timestamps_strictly_increase(self, engine_8b):
        events = list(stream(engine_8b, GenerationRequest(0, 100, 32)))
        times = [e.time_s for e in events]
        assert all(b > a for a, b in zip(times, times[1:]))

    def test_only_last_event_final(self, engine_8b):
        events = list(stream(engine_8b, GenerationRequest(0, 100, 16)))
        assert not any(e.final for e in events[:-1])
        assert events[-1].final

    def test_budget_respected(self, engine_8b):
        events = list(stream(engine_8b, GenerationRequest(
            0, 100, 500, max_new_tokens=64)))
        assert len(events) == 64

    def test_parallel_requests_rejected(self, engine_8b):
        with pytest.raises(ValueError):
            list(stream(engine_8b, GenerationRequest(0, 100, 32, n=2)))


class TestStreamingMetrics:
    def test_ttft_includes_prefill_and_first_step(self, engine_8b):
        metrics = streaming_metrics(engine_8b, GenerationRequest(0, 512, 64))
        prefill = engine_8b.kernels.prefill(engine_8b.profile, 512).seconds
        assert metrics.ttft_s > prefill
        assert metrics.ttft_s < prefill + 0.2

    def test_tpot_matches_tbt(self, engine_8b):
        # Steady-state TPOT equals the paper's TBT (~0.092 s for the 8B).
        metrics = streaming_metrics(engine_8b, GenerationRequest(0, 512, 128))
        assert metrics.tpot_s == pytest.approx(0.092, rel=0.06)

    def test_total_consistent_with_generate(self, engine_8b):
        request = GenerationRequest(0, 150, 100)
        metrics = streaming_metrics(engine_8b, request)
        result = engine_8b.generate(request)
        # Streaming excludes the framework's fixed overhead; within it.
        assert metrics.total_s == pytest.approx(
            result.total_seconds, abs=engine_8b.framework.fixed_overhead_s + 0.01)

    def test_single_token_request(self, engine_8b):
        metrics = streaming_metrics(engine_8b, GenerationRequest(0, 100, 1))
        assert metrics.output_tokens == 1
        assert metrics.tpot_s == 0.0

    def test_decode_seconds_decomposition(self, engine_8b):
        metrics = streaming_metrics(engine_8b, GenerationRequest(0, 100, 64))
        assert metrics.decode_seconds == pytest.approx(
            metrics.total_s - metrics.ttft_s)

    def test_ttft_dominated_by_prefill_for_long_prompts(self, engine_8b):
        short = streaming_metrics(engine_8b, GenerationRequest(0, 64, 16))
        long = streaming_metrics(engine_8b, GenerationRequest(0, 4096, 16))
        assert long.ttft_s > 3 * short.ttft_s
