"""Tests for the analytical latency models (Eqns. 1-3)."""

import numpy as np
import pytest

from repro.core.latency_model import (
    PAPER_DECODE_COEFFICIENTS,
    PAPER_PREFILL_COEFFICIENTS,
    DecodeLatencyModel,
    PrefillLatencyModel,
    TotalLatencyModel,
    pad_input_length,
)


class TestPadding:
    @pytest.mark.parametrize("raw,padded", [(1, 128), (128, 128), (129, 256),
                                            (1000, 1024)])
    def test_scalar(self, raw, padded):
        assert pad_input_length(raw) == padded

    def test_vector(self):
        out = pad_input_length(np.array([1, 200, 256]))
        assert list(out) == [128, 256, 256]


class TestPrefillModel:
    def test_quadratic_on_padded_length(self):
        model = PrefillLatencyModel(a=1e-6, b=1e-4, c=0.1)
        expected = 1e-6 * 256**2 + 1e-4 * 256 + 0.1
        assert model(200) == pytest.approx(expected)

    def test_constant_within_tile(self):
        model = PrefillLatencyModel(a=1e-6, b=1e-4, c=0.1)
        assert model(129) == model(256)

    def test_paper_coefficients_present(self):
        assert set(PAPER_PREFILL_COEFFICIENTS) == {
            "dsr1-qwen-1.5b", "dsr1-llama-8b", "dsr1-qwen-14b"}


class TestDecodeModel:
    def test_closed_form_equals_step_sum(self):
        model = DecodeLatencyModel(m=7e-7, n=0.09)
        input_len, output_len = 512, 333
        steps = model.tbt(input_len + np.arange(output_len))
        assert model(input_len, output_len) == pytest.approx(float(steps.sum()))

    def test_tbt_at_context(self):
        model = DecodeLatencyModel(m=1e-6, n=0.1)
        assert model.tbt(1000) == pytest.approx(0.101)

    def test_vectorized_outputs(self):
        model = DecodeLatencyModel(m=7e-7, n=0.09)
        out = model(512, np.array([10, 100, 1000]))
        assert out.shape == (3,)
        assert (np.diff(out) > 0).all()

    def test_paper_8b_base_latency(self):
        # 811 tokens at the 8B coefficients lands near Table X's 87 s.
        model = PAPER_DECODE_COEFFICIENTS["dsr1-llama-8b"]
        assert float(model(150, 811)) == pytest.approx(75, rel=0.1)


class TestTotalModelInversion:
    @pytest.fixture()
    def total(self):
        return TotalLatencyModel(
            PrefillLatencyModel(a=6.65e-7, b=2.9e-4, c=0.104),
            DecodeLatencyModel(m=6.92e-7, n=0.092),
        )

    def test_inversion_is_tight(self, total):
        budget = 30.0
        max_tokens = total.max_output_tokens(150, budget)
        assert float(total(150, max_tokens)) <= budget
        assert float(total(150, max_tokens + 1)) > budget

    @pytest.mark.parametrize("budget", [1.0, 5.0, 60.0, 600.0])
    def test_inversion_various_budgets(self, total, budget):
        max_tokens = total.max_output_tokens(150, budget)
        if max_tokens > 0:
            assert float(total(150, max_tokens)) <= budget

    def test_budget_below_prefill_gives_zero(self, total):
        assert total.max_output_tokens(4096, 0.5) == 0

    def test_zero_m_linear_inversion(self):
        total = TotalLatencyModel(
            PrefillLatencyModel(0.0, 0.0, 0.1),
            DecodeLatencyModel(m=0.0, n=0.1),
        )
        assert total.max_output_tokens(100, 10.1) == 100

    def test_rejects_non_positive_budget(self, total):
        with pytest.raises(ValueError):
            total.max_output_tokens(100, 0.0)

    def test_degenerate_model_rejected(self):
        total = TotalLatencyModel(
            PrefillLatencyModel(0.0, 0.0, 0.0),
            DecodeLatencyModel(m=0.0, n=0.0),
        )
        with pytest.raises(ValueError):
            total.max_output_tokens(100, 1.0)

    def test_total_is_sum_of_phases(self, total):
        assert float(total(512, 100)) == pytest.approx(
            float(total.prefill(512)) + float(total.decode(512, 100)))
