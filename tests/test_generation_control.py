"""Tests for token-control strategies."""

import pytest

from repro.generation.control import (
    ControlMode,
    GenerationControl,
    base_control,
    direct_control,
    hard_budget,
    nr_control,
    soft_budget,
    standard_controls,
)
from repro.generation.reasoning import (
    NR_THINKING_BLOCK,
    TraceStructure,
    length_instruction,
    prompt_overhead_tokens,
    split_trace,
)


class TestControlValidation:
    def test_budget_modes_require_budget(self):
        with pytest.raises(ValueError):
            GenerationControl(ControlMode.HARD_BUDGET)
        with pytest.raises(ValueError):
            GenerationControl(ControlMode.SOFT_BUDGET, budget=0)

    def test_non_budget_modes_reject_budget(self):
        with pytest.raises(ValueError):
            GenerationControl(ControlMode.BASE, budget=128)
        with pytest.raises(ValueError):
            GenerationControl(ControlMode.NO_REASONING, budget=128)


class TestLabels:
    @pytest.mark.parametrize("control,label", [
        (base_control(), "Base"),
        (hard_budget(128), "128T"),
        (hard_budget(256), "256T"),
        (soft_budget(128), "128 (NC)"),
        (nr_control(), "NR"),
        (direct_control(), "Direct"),
    ])
    def test_paper_labels(self, control, label):
        assert control.label == label


class TestCapabilityModeMapping:
    def test_base_and_soft_use_completed(self):
        assert base_control().capability_mode == "completed"
        assert soft_budget(128).capability_mode == "completed"

    def test_hard_uses_hard(self):
        assert hard_budget(128).capability_mode == "hard"

    def test_nr_and_direct(self):
        assert nr_control().capability_mode == "nr"
        assert direct_control().capability_mode == "direct"

    def test_only_hard_enforces(self):
        assert hard_budget(128).enforces_budget
        assert not soft_budget(128).enforces_budget
        assert not base_control().enforces_budget


class TestStandardGrid:
    def test_six_configurations(self):
        controls = standard_controls()
        assert len(controls) == 6
        assert {c.label for c in controls} == {
            "Base", "128T", "256T", "128 (NC)", "256 (NC)", "NR"}

    def test_direct_included_on_request(self):
        assert any(c.mode is ControlMode.DIRECT
                   for c in standard_controls(include_direct=True))


class TestReasoningTraces:
    def test_nr_block_matches_paper(self):
        assert "Okay, I think I have finished thinking." in NR_THINKING_BLOCK
        assert NR_THINKING_BLOCK.startswith("<|beginning of thinking|>")

    def test_prompt_overhead(self):
        assert prompt_overhead_tokens(base_control()) == 0
        assert prompt_overhead_tokens(direct_control()) == 0
        assert prompt_overhead_tokens(hard_budget(128)) > 0
        assert prompt_overhead_tokens(nr_control()) > 0

    def test_length_instruction_mentions_budget(self):
        assert "128" in length_instruction(128)

    def test_split_completed_trace(self):
        trace = split_trace(500, base_control())
        assert trace.answer_complete
        assert trace.think_tokens + trace.answer_tokens == 500
        assert trace.answer_tokens > 0

    def test_split_truncated_hard_trace(self):
        trace = split_trace(128, hard_budget(128), truncated=True)
        assert not trace.answer_complete
        assert trace.answer_tokens == 0

    def test_split_direct_trace_has_no_thinking(self):
        trace = split_trace(40, direct_control())
        assert trace.think_tokens == 0
        assert trace.answer_tokens == 40

    def test_split_rejects_empty(self):
        with pytest.raises(ValueError):
            split_trace(0, base_control())

    def test_trace_total(self):
        assert TraceStructure(10, 5, True).total_tokens == 15
