"""Tests for evaluation result export and registry cross-consistency."""

import json

import pytest

from repro.evaluation.evaluator import Evaluator
from repro.evaluation.export import (
    QUESTION_COLUMNS,
    read_questions_csv,
    read_timing_json,
    result_summary,
    write_questions_csv,
    write_summary_json,
    write_timing_json,
)
from repro.generation.control import base_control, direct_control, standard_controls
from repro.generation.length import LengthModel
from repro.models.capability import has_profile, profiles_for_benchmark
from repro.models.registry import get_model
from repro.workloads.mmlu_redux import mmlu_redux


@pytest.fixture(scope="module")
def result():
    evaluator = Evaluator(mmlu_redux(seed=0, size=120), seed=0)
    return evaluator.evaluate(get_model("dsr1-llama-8b"), base_control())


class TestExport:
    def test_summary_fields(self, result):
        summary = result_summary(result)
        assert summary["config"] == "Base"
        assert summary["accuracy"] == pytest.approx(result.accuracy)
        assert "stem" in summary["accuracy_by_subject"]

    def test_summary_json_round_trip(self, result, tmp_path):
        path = write_summary_json([result], tmp_path / "summary.json")
        loaded = json.loads(path.read_text())
        assert len(loaded) == 1
        assert loaded[0]["model"] == "dsr1-llama-8b"

    def test_questions_csv_round_trip(self, result, tmp_path):
        path = write_questions_csv(result, tmp_path / "questions.csv")
        records = read_questions_csv(path)
        assert len(records) == 120
        assert records[0]["qid"] == 0
        total_latency = sum(r["latency_seconds"] for r in records)
        assert total_latency == pytest.approx(
            float(result.per_question.latency_seconds.sum()), rel=1e-6)

    def test_csv_has_documented_columns(self, result, tmp_path):
        path = write_questions_csv(result, tmp_path / "questions.csv")
        header = path.read_text().splitlines()[0].split(",")
        assert tuple(header) == QUESTION_COLUMNS

    def test_csv_types_preserved(self, result, tmp_path):
        path = write_questions_csv(result, tmp_path / "questions.csv")
        record = read_questions_csv(path)[0]
        assert isinstance(record["truncated"], bool)
        assert isinstance(record["output_tokens"], int)
        assert 0.0 <= record["success_probability"] <= 1.0


class TestTimingExport:
    def test_pipeline_report_round_trip(self, tmp_path):
        from repro.pipeline.runner import run_pipeline
        from repro.pipeline.store import ArtifactStore

        result = run_pipeline(("table9", "fig6", "fig7"), seed=0, smoke=True,
                              store=ArtifactStore())
        path = write_timing_json(result.report, tmp_path / "timing.json")
        records = read_timing_json(path)
        assert records == result.report.to_records()
        by_kind = {}
        for record in records:
            by_kind.setdefault(record["kind"], []).append(record)
        assert [r["artifact"] for r in by_kind["artifact"]] == [
            "table9", "fig6", "fig7"]
        grid = {r["producer"]: r for r in by_kind["producer"]}["tradeoff_grid"]
        assert grid["cache_misses"] == 1
        assert grid["cache_hits"] == 1
        (run_record,) = by_kind["run"]
        assert run_record["wall_seconds"] > 0
        assert run_record["seed"] == 0 and run_record["smoke"] is True

    def test_duck_typed_report(self, tmp_path):
        class FakeReport:
            def to_records(self):
                return [{"kind": "run", "wall_seconds": 1.5}]

        path = write_timing_json(FakeReport(), tmp_path / "t.json")
        assert read_timing_json(path) == [{"kind": "run", "wall_seconds": 1.5}]


class TestRegistryConsistency:
    """Capability profiles, length tables, and the evaluator must agree."""

    def test_every_mmlu_redux_profile_has_lengths(self):
        for profile in profiles_for_benchmark("mmlu-redux"):
            model = get_model(profile.model)
            lengths = LengthModel(model, "mmlu-redux")
            # base_mean() must resolve for every profiled model.
            assert lengths.base_mean() > 0

    def test_standard_grid_evaluable_for_dsr1_models(self):
        evaluator = Evaluator(mmlu_redux(seed=0, size=50), seed=0)
        for name in ("dsr1-qwen-1.5b", "dsr1-llama-8b", "dsr1-qwen-14b"):
            for control in standard_controls():
                outcome = evaluator.evaluate(get_model(name), control)
                assert 0.0 < outcome.accuracy < 1.0

    def test_direct_models_evaluable(self):
        evaluator = Evaluator(mmlu_redux(seed=0, size=50), seed=0)
        for name in ("qwen2.5-7b-it", "gemma-7b-it", "llama3.1-8b-it",
                     "qwen2.5-1.5b-it", "qwen2.5-14b-it"):
            outcome = evaluator.evaluate(get_model(name), direct_control())
            assert outcome.accuracy > 0.2

    def test_all_mmlu_profiles_cover_awq_and_fp16(self):
        for base in ("dsr1-qwen-1.5b", "dsr1-llama-8b", "dsr1-qwen-14b"):
            assert has_profile(base, "mmlu")
            assert has_profile(f"{base}-awq-w4", "mmlu")
