"""Shared fixtures for the test suite."""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro.engine.engine import InferenceEngine
from repro.hardware.calibration import calibration_for_model
from repro.hardware.kernels import KernelEngine
from repro.hardware.memory import MemorySpec, MemorySystem
from repro.hardware.power import PowerModel
from repro.hardware.soc import jetson_orin_agx_64gb
from repro.models.registry import get_model
from repro.workloads.mmlu_redux import mmlu_redux

warnings.filterwarnings("ignore", category=Warning, module="scipy")


@pytest.fixture(scope="session")
def orin():
    """The Jetson AGX Orin spec."""
    return jetson_orin_agx_64gb()


@pytest.fixture(scope="session")
def model_1p5b():
    return get_model("dsr1-qwen-1.5b")


@pytest.fixture(scope="session")
def model_8b():
    return get_model("dsr1-llama-8b")


@pytest.fixture(scope="session")
def model_14b():
    return get_model("dsr1-qwen-14b")


@pytest.fixture(scope="session")
def dsr1_models(model_1p5b, model_8b, model_14b):
    return (model_1p5b, model_8b, model_14b)


@pytest.fixture()
def memory(orin):
    return MemorySystem(MemorySpec(orin.dram_bandwidth, orin.l2_cache))


@pytest.fixture()
def kernels_8b(orin, memory, model_8b):
    profile = model_8b.execution_profile()
    calib = calibration_for_model(profile.calibration_key)
    return KernelEngine(orin, memory, calib), profile


@pytest.fixture()
def power_8b(orin, model_8b):
    calib = calibration_for_model(model_8b.calibration_key)
    return PowerModel(orin, calib.power)


@pytest.fixture(scope="session")
def engine_1p5b(model_1p5b):
    return InferenceEngine(model_1p5b)


@pytest.fixture(scope="session")
def engine_8b(model_8b):
    return InferenceEngine(model_8b)


@pytest.fixture(scope="session")
def small_benchmark():
    """A small MMLU-Redux subset for fast evaluator tests."""
    return mmlu_redux(seed=0, size=300)


@pytest.fixture()
def rng():
    return np.random.default_rng(1234)
