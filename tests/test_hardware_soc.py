"""Tests for the SoC specifications and power modes."""

import pytest

from repro.hardware.soc import (
    PlatformEconomics,
    PowerMode,
    SocState,
    h100_like_server,
    nvidia_h100_sxm,
)


class TestJetsonOrinSpec:
    def test_table1_cuda_cores(self, orin):
        assert orin.cuda_cores == 2048

    def test_table1_tensor_cores(self, orin):
        assert orin.tensor_cores == 64

    def test_table1_memory_capacity(self, orin):
        assert orin.dram_capacity == 64 * 1024**3

    def test_table1_bandwidth(self, orin):
        assert orin.dram_bandwidth == pytest.approx(204.8e9)

    def test_table1_fp32_throughput(self, orin):
        assert orin.peak_fp32_flops == pytest.approx(5.3e12)

    def test_dense_int8_half_of_sparse(self, orin):
        assert orin.peak_int8_ops == pytest.approx(275e12 / 2)

    def test_fp16_half_of_int8(self, orin):
        assert orin.peak_fp16_flops == pytest.approx(orin.peak_int8_ops / 2)

    def test_sm_count_and_l1(self, orin):
        # 192KB x 16 SMs of aggregate L1 per the paper.
        assert orin.sm_count == 16
        assert orin.l1_cache == 3 * 1024**2

    def test_flops_to_bytes_ratio_memory_bound_decode(self, orin):
        # Decode GEMV intensity (~1 FLOP/byte) sits far below the balance
        # point, confirming the bandwidth-bound claim of Section VI.
        assert orin.flops_to_bytes_ratio > 100


class TestPowerModes:
    def test_maxn_is_identity(self, orin):
        scaled = orin.at_mode(PowerMode.MAXN)
        assert scaled.peak_fp16_flops == orin.peak_fp16_flops
        assert scaled.dram_bandwidth == orin.dram_bandwidth

    @pytest.mark.parametrize("mode", [PowerMode.MODE_15W, PowerMode.MODE_30W,
                                      PowerMode.MODE_50W])
    def test_reduced_modes_scale_down(self, orin, mode):
        scaled = orin.at_mode(mode)
        assert scaled.peak_fp16_flops < orin.peak_fp16_flops
        assert scaled.dram_bandwidth < orin.dram_bandwidth
        assert scaled.power_cap_w < orin.power_cap_w

    def test_modes_are_monotone(self, orin):
        ordered = [orin.at_mode(m).peak_fp16_flops for m in (
            PowerMode.MODE_15W, PowerMode.MODE_30W, PowerMode.MODE_50W,
            PowerMode.MAXN)]
        assert ordered == sorted(ordered)

    def test_mode_preserves_capacity(self, orin):
        assert orin.at_mode(PowerMode.MODE_15W).dram_capacity == orin.dram_capacity


class TestServerSpecs:
    def test_h100_like_is_much_faster(self, orin):
        server = h100_like_server()
        assert server.dram_bandwidth > 10 * orin.dram_bandwidth
        assert server.peak_fp16_flops > 10 * orin.peak_fp16_flops

    def test_h100_has_smaller_host_overheads(self):
        assert h100_like_server().host_overhead_scale < 1.0

    def test_h100_sxm_reference(self):
        spec = nvidia_h100_sxm()
        assert spec.dram_capacity == 80 * 1024**3
        assert spec.tdp_w == 700.0


class TestPlatformEconomics:
    def test_paper_rates(self):
        econ = PlatformEconomics()
        assert econ.electricity_usd_per_kwh == 0.15
        assert econ.hardware_usd_per_hour == 0.045

    def test_energy_only_cost(self):
        econ = PlatformEconomics()
        # 1 kWh of energy, no time.
        assert econ.cost_usd(3.6e6, 0.0) == pytest.approx(0.15)

    def test_hardware_only_cost(self):
        econ = PlatformEconomics()
        assert econ.cost_usd(0.0, 3600.0) == pytest.approx(0.045)

    def test_table3_single_batch_scenario(self):
        # 4358 s, 0.0317 kWh -> ~$0.302 per 1M tokens over 195,624 tokens.
        econ = PlatformEconomics()
        cost = econ.cost_usd(0.0317 * 3.6e6, 4358.0)
        per_mtok = cost / 195_624 * 1e6
        assert per_mtok == pytest.approx(0.302, rel=0.05)


class TestSocState:
    def test_allocate_and_free(self, orin):
        state = SocState(orin)
        state.allocate(10 * 1024**3, "weights")
        assert state.allocated_dram == 10 * 1024**3
        assert "weights" in state.resident_models
        state.free(10 * 1024**3, "weights")
        assert state.allocated_dram == 0
        assert "weights" not in state.resident_models

    def test_allocate_beyond_capacity_raises(self, orin):
        state = SocState(orin)
        with pytest.raises(MemoryError):
            state.allocate(orin.dram_capacity + 1, "too big")

    def test_multiple_allocations_accumulate(self, orin):
        state = SocState(orin)
        state.allocate(1024, "a")
        state.allocate(2048, "b")
        assert state.allocated_dram == 3072
