"""Tests for request and result types."""

import pytest

from repro.engine.request import GenerationRequest, GenerationResult, SequenceResult
from repro.hardware.telemetry import EnergyReport


class TestGenerationRequest:
    def test_stop_at_natural_length_without_budget(self):
        request = GenerationRequest(0, prompt_tokens=10, natural_length=200)
        assert request.stop_lengths() == (200,)

    def test_budget_truncates(self):
        request = GenerationRequest(0, 10, 200, max_new_tokens=128)
        assert request.stop_lengths() == (128,)

    def test_budget_not_reached(self):
        request = GenerationRequest(0, 10, 50, max_new_tokens=128)
        assert request.stop_lengths() == (50,)

    def test_parallel_samples_default_same_length(self):
        request = GenerationRequest(0, 10, 100, n=4)
        assert request.stop_lengths() == (100,) * 4

    def test_parallel_samples_custom_lengths(self):
        request = GenerationRequest(0, 10, 100, n=3,
                                    sample_natural_lengths=(80, 100, 120),
                                    max_new_tokens=110)
        assert request.stop_lengths() == (80, 100, 110)

    @pytest.mark.parametrize("kwargs", [
        dict(prompt_tokens=0, natural_length=10),
        dict(prompt_tokens=10, natural_length=0),
        dict(prompt_tokens=10, natural_length=10, max_new_tokens=0),
        dict(prompt_tokens=10, natural_length=10, n=0),
        dict(prompt_tokens=10, natural_length=10, n=2,
             sample_natural_lengths=(5,)),
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            GenerationRequest(0, **kwargs)


class TestGenerationResult:
    def _result(self):
        return GenerationResult(
            request_id=0,
            prompt_tokens=100,
            sequences=(SequenceResult(128, True), SequenceResult(64, False)),
            prefill_seconds=0.2,
            decode_seconds=10.0,
            energy=EnergyReport(total_seconds=10.2, total_energy_joules=240.0),
            batch=2,
        )

    def test_total_seconds(self):
        assert self._result().total_seconds == pytest.approx(10.2)

    def test_primary_sequence(self):
        result = self._result()
        assert result.output_tokens == 128
        assert result.truncated

    def test_total_output_tokens(self):
        assert self._result().total_output_tokens == 192

    def test_tokens_per_second(self):
        assert self._result().tokens_per_second == pytest.approx(12.8)
