"""Population trace generator: determinism, chunking, and shape gates."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.workloads import (
    PopulationConfig,
    RegionTier,
    TraceChunk,
    population_trace,
    session_key,
)

COLUMNS = ("request_id", "arrival_s", "prompt_tokens", "output_tokens",
           "prefix_tokens", "session", "user", "region", "turn")


def _config(**overrides):
    base = dict(requests=400, users=120, mean_turns=4.0,
                base_sessions_per_s=0.5, peak_sessions_per_s=0.8,
                period_s=600.0)
    base.update(overrides)
    return PopulationConfig(**base)


def _trace(seed=7, **overrides):
    return population_trace(np.random.default_rng(seed), _config(**overrides))


def _column_bytes(trace):
    return tuple(getattr(trace, name).tobytes() for name in COLUMNS)


class TestDeterminism:
    def test_same_seed_is_byte_identical(self):
        assert _column_bytes(_trace(seed=7)) == _column_bytes(_trace(seed=7))

    def test_different_seeds_differ(self):
        assert _column_bytes(_trace(seed=7)) != _column_bytes(_trace(seed=8))

    def test_rng_consumption_is_independent_of_chunking(self):
        # Draw order is frozen: after generation, the generator must sit
        # at the same state no matter how (or whether) the trace is
        # later chunked, so follow-on draws stay reproducible.
        rng_a = np.random.default_rng(7)
        trace_a = population_trace(rng_a, _config())
        rng_b = np.random.default_rng(7)
        trace_b = population_trace(rng_b, _config())
        trace_b.chunks(17)  # chunking is a view decision, not a draw
        trace_b.materialize(stop=5)
        assert rng_a.random() == rng_b.random()
        assert _column_bytes(trace_a) == _column_bytes(trace_b)


class TestChunking:
    @pytest.mark.parametrize("chunk_size", [1, 7, 64, 400, 1000])
    def test_chunks_reassemble_byte_identically(self, chunk_size):
        trace = _trace()
        chunks = trace.chunks(chunk_size)
        assert sum(c.n for c in chunks) == trace.n
        assert chunks[0].start == 0
        for name in COLUMNS[:-1]:  # TraceChunk carries all but ``turn``
            if not hasattr(chunks[0], name):
                continue
            joined = np.concatenate([getattr(c, name) for c in chunks])
            assert joined.tobytes() == getattr(trace, name).tobytes()

    def test_chunks_are_views_not_copies(self):
        trace = _trace()
        chunk = trace.chunks(64)[0]
        assert isinstance(chunk, TraceChunk)
        assert chunk.arrival_s.base is trace.arrival_s
        assert chunk.deadline_s is trace.config.deadline_s

    def test_chunk_size_validation(self):
        with pytest.raises(ValueError):
            _trace().chunks(0)


class TestInvariants:
    def test_arrivals_sorted_and_ids_dense(self):
        trace = _trace()
        assert np.all(np.diff(trace.arrival_s) >= 0.0)
        assert np.array_equal(trace.request_id, np.arange(trace.n))

    def test_prompt_is_prefix_plus_bounded_suffix(self):
        trace = _trace()
        config = trace.config
        suffix = trace.prompt_tokens - trace.prefix_tokens
        assert np.all(suffix >= config.suffix_min_tokens)
        assert np.all(suffix <= config.suffix_max_tokens)
        assert np.all(trace.output_tokens >= config.output_min_tokens)
        assert np.all(trace.output_tokens <= config.output_max_tokens)
        prefixes = {r.prefix_tokens for r in config.regions}
        assert set(np.unique(trace.prefix_tokens)) <= prefixes

    def test_sessions_partition_the_requests(self):
        trace = _trace()
        sizes = np.bincount(trace.session, minlength=trace.num_sessions)
        assert int(sizes.sum()) == trace.n
        assert np.all(sizes[:-1] >= 1)
        assert int(sizes.max()) <= trace.config.max_turns
        assert np.all(trace.turn >= 0)
        # Each session's region (and owner) is constant across turns.
        for column in (trace.region, trace.user):
            spans = {}
            for s, v in zip(trace.session, column):
                spans.setdefault(int(s), set()).add(int(v))
            assert all(len(vals) == 1 for vals in spans.values())

    def test_session_key_is_the_shared_mapping(self):
        assert session_key(0) == "s0"
        assert session_key(1234) == "s1234"

    def test_materialize_prefix_matches_full(self):
        trace = _trace()
        head = trace.materialize(stop=10)
        full = trace.materialize()
        assert len(head) == 10
        assert len(full) == trace.n
        for a, b in zip(head, full[:10]):
            assert a.request.request_id == b.request.request_id
            assert a.arrival_s == b.arrival_s
            assert a.session == b.session
            assert a.prefix_tokens == b.prefix_tokens


class TestHeavyTail:
    def test_top_one_percent_owns_an_outsized_share(self):
        trace = _trace(requests=4000, users=2000, zipf_exponent=1.1)
        share = trace.top_user_share(0.01)
        # 1% of a uniform population would own ~1%; the Zipf head must
        # own far more for the gateway studies to be population-shaped.
        assert share > 0.05
        assert trace.top_user_share(1.0) == pytest.approx(1.0)

    def test_share_is_monotone_in_fraction(self):
        trace = _trace(requests=2000, users=500)
        assert (trace.top_user_share(0.01) <= trace.top_user_share(0.1)
                <= trace.top_user_share(1.0))

    def test_fraction_validation(self):
        trace = _trace()
        for bad in (0.0, -0.5, 1.5):
            with pytest.raises(ValueError):
                trace.top_user_share(bad)

    def test_requests_per_user_covers_population(self):
        trace = _trace()
        counts = trace.requests_per_user()
        assert counts.shape == (trace.config.users,)
        assert int(counts.sum()) == trace.n


class TestValidation:
    @pytest.mark.parametrize("overrides", [
        {"requests": 0},
        {"users": 0},
        {"zipf_exponent": -0.1},
        {"mean_turns": 0.5},
        {"max_turns": 0},
        {"think_time_s": 0.0},
        {"regions": ()},
        {"suffix_min_tokens": 0},
        {"suffix_min_tokens": 64, "suffix_max_tokens": 32},
        {"output_min_tokens": 0},
        {"output_min_tokens": 64, "output_max_tokens": 32},
        {"base_sessions_per_s": 0.0},
        {"peak_sessions_per_s": 0.1},  # below base
        {"period_s": 0.0},
        {"deadline_s": 0.0},
    ])
    def test_config_rejects_bad_shapes(self, overrides):
        with pytest.raises(ValueError):
            _config(**overrides)

    @pytest.mark.parametrize("kwargs", [
        {"name": ""},
        {"weight": 0.0},
        {"prefix_tokens": -1},
    ])
    def test_region_tier_rejects_bad_shapes(self, kwargs):
        base = dict(name="tier", weight=1.0, prefix_tokens=128)
        base.update(kwargs)
        with pytest.raises(ValueError):
            RegionTier(**base)

    def test_session_starts_shape_is_checked(self):
        with pytest.raises(ValueError):
            population_trace(np.random.default_rng(0), _config(),
                             session_starts=lambda rng, n: np.zeros(n + 1))


class TestProperties:
    @given(seed=st.integers(0, 2**32 - 1),
           requests=st.integers(1, 300),
           users=st.integers(1, 60),
           mean_turns=st.floats(1.0, 8.0),
           chunk_size=st.integers(1, 128))
    @settings(max_examples=20, deadline=None)
    def test_generation_is_seeded_and_chunk_stable(self, seed, requests,
                                                   users, mean_turns,
                                                   chunk_size):
        config = _config(requests=requests, users=users,
                         mean_turns=mean_turns)
        one = population_trace(np.random.default_rng(seed), config)
        two = population_trace(np.random.default_rng(seed), config)
        assert _column_bytes(one) == _column_bytes(two)
        assert one.n == requests
        assert np.all(np.diff(one.arrival_s) >= 0.0)
        joined = np.concatenate(
            [c.arrival_s for c in two.chunks(chunk_size)])
        assert joined.tobytes() == one.arrival_s.tobytes()
        assert math.isfinite(one.top_user_share(0.01))
