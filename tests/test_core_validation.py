"""Tests for held-out model validation (Tables VI and VIII protocol)."""

import numpy as np
import pytest

from repro.core.characterize import characterize_model
from repro.core.validation import (
    measure_held_out,
    sample_held_out_shapes,
    validate_energy_model,
    validate_latency_model,
)
from repro.engine.engine import InferenceEngine
from repro.models.registry import get_model


@pytest.fixture(scope="module")
def characterization():
    return characterize_model(get_model("dsr1-llama-8b"), power_samples=1)


@pytest.fixture(scope="module")
def measurements():
    rng = np.random.default_rng(7)
    inputs, outputs = sample_held_out_shapes(rng, 40)
    engine = InferenceEngine(get_model("dsr1-llama-8b"))
    return measure_held_out(engine, inputs, outputs)


class TestHeldOutMeasurement:
    def test_shapes(self, measurements):
        assert measurements.input_lens.shape == (40,)
        assert measurements.decode_seconds.shape == (40,)

    def test_totals_compose(self, measurements):
        assert np.allclose(
            measurements.total_seconds,
            measurements.prefill_seconds + measurements.decode_seconds)
        assert np.allclose(
            measurements.total_energy_j,
            measurements.prefill_energy_j + measurements.decode_energy_j)

    def test_misaligned_rejected(self):
        engine = InferenceEngine(get_model("dsr1-qwen-1.5b"))
        with pytest.raises(ValueError):
            measure_held_out(engine, np.array([10]), np.array([10, 20]))

    def test_noise_free_mode(self):
        engine = InferenceEngine(get_model("dsr1-qwen-1.5b"))
        a = measure_held_out(engine, np.array([100]), np.array([100]),
                             timing_noise_std=0.0)
        b = measure_held_out(engine, np.array([100]), np.array([100]),
                             timing_noise_std=0.0, seed=99)
        assert a.decode_seconds[0] == b.decode_seconds[0]

    def test_shapes_sampler_ranges(self, rng):
        inputs, outputs = sample_held_out_shapes(rng, 50)
        assert inputs.min() >= 32 and inputs.max() <= 4096
        assert outputs.min() >= 32 and outputs.max() <= 4096


class TestValidationReports:
    def test_latency_mape_under_2pct_total(self, characterization, measurements):
        # Table VI: total MAPE under 2% across all models.
        report = validate_latency_model("8b", characterization.latency,
                                        measurements)
        assert report.total_mape < 2.0
        assert report.decode_mape < 2.0

    def test_prefill_mape_larger_due_to_padding(self, characterization,
                                                measurements):
        # Table VI: prefill MAPE is several percent (padding mismatch).
        report = validate_latency_model("8b", characterization.latency,
                                        measurements)
        assert report.prefill_mape > report.decode_mape

    def test_energy_mape_moderate(self, characterization, measurements):
        # Table VIII: ~6% in the paper; single-digit here.
        report = validate_energy_model("8b", characterization.energy,
                                       measurements)
        assert report.decode_mape < 10.0
        assert report.total_mape < 10.0

    def test_model_name_carried(self, characterization, measurements):
        report = validate_latency_model("my-model", characterization.latency,
                                        measurements)
        assert report.model == "my-model"
