"""Unit tests for the remaining experiment modules and the runner."""


from repro.core.latency_model import (
    DecodeLatencyModel,
    PrefillLatencyModel,
    TotalLatencyModel,
)
from repro.core.planner import CandidateConfig, DeploymentPlanner
from repro.experiments import planner_study, prefix_caching, serving_study
from repro.experiments.report import Figure, Series, Table
from repro.experiments.runner import list_experiments, render
from repro.generation.control import base_control
from repro.models.registry import get_model


def _tiny_planner():
    latency = TotalLatencyModel(PrefillLatencyModel(0, 0, 0.05),
                                DecodeLatencyModel(0, 0.05))
    candidates = [
        CandidateConfig(get_model("dsr1-qwen-1.5b"), base_control(),
                        expected_output_tokens=tokens,
                        predicted_accuracy=accuracy, latency=latency)
        for tokens, accuracy in ((20, 0.3), (200, 0.5), (2000, 0.8))
    ]
    return DeploymentPlanner(candidates)


class TestPlannerStudy:
    def test_frontier_with_injected_planner(self):
        decisions = planner_study.run_planner_frontier(
            budgets=(1.5, 20.0, 200.0), planner=_tiny_planner())
        accuracies = [d.predicted_accuracy for d in decisions]
        assert accuracies == [0.3, 0.5, 0.8]

    def test_figure1_only_feasible_points(self):
        decisions = planner_study.run_planner_frontier(
            budgets=(0.01, 5.0), planner=_tiny_planner())
        figure = planner_study.figure1(decisions)
        assert len(figure.series[0].x) == 1  # 0.01 s is infeasible

    def test_table_marks_infeasible(self):
        decisions = planner_study.run_planner_frontier(
            budgets=(0.01,), planner=_tiny_planner())
        text = planner_study.planner_table(decisions).to_text()
        assert "(infeasible)" in text


class TestPrefixCachingStudy:
    def test_rows_cover_all_tasks(self):
        rows = prefix_caching.run_prefix_caching_study()
        assert {row.task for row in rows} == {"calendar", "meeting", "trip"}

    def test_speedups_computed(self):
        rows = prefix_caching.run_prefix_caching_study()
        for row in rows:
            assert row.prefill_speedup > 1.0
            assert 1.0 <= row.end_to_end_speedup < row.prefill_speedup


class TestServingStudyDetails:
    def test_custom_levels_respected(self):
        points = serving_study.run_serving_study(
            qps_levels=(0.1,), num_requests=20)
        assert len(points) == 1
        assert points[0].offered_qps == 0.1

    def test_table_columns(self):
        points = serving_study.run_serving_study(
            qps_levels=(0.1,), num_requests=20)
        table = serving_study.serving_table(points)
        assert "p95 (s)" in table.headers


class TestRunner:
    def test_render_table(self):
        table = Table("T", ["a"])
        table.add_row(1)
        assert "T" in render(table)

    def test_render_figure(self):
        figure = Figure("F", "x", "y")
        figure.add(Series("s", (1.0,), (2.0,)))
        assert "F" in render(figure)

    def test_render_tuple(self):
        table = Table("T", ["a"])
        assert render((table, table)).count("T") == 2

    def test_render_fallback_str(self):
        assert render(42) == "42"

    def test_registry_covers_every_paper_artifact(self):
        ids = set(list_experiments())
        expected_tables = {f"table{n}" for n in
                           (2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15,
                            16, 17, 20, 21)} | {"table18_19", "table22_23"}
        expected_figures = {"fig1", "fig2", "fig3a", "fig3b", "fig4", "fig5",
                            "fig6", "fig7", "fig8", "fig9", "fig10", "fig11",
                            "fig12", "fig13", "fig14"}
        assert expected_tables <= ids
        assert expected_figures <= ids

    def test_extension_artifacts_registered(self):
        ids = set(list_experiments())
        assert {"serving", "optimizations", "power-modes", "hybrid-scaling",
                "prefix-caching", "deadline-control", "batch-latency-model",
                "takeaways", "fidelity"} <= ids
