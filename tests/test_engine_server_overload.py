"""Scheduling-policy and accounting tests under overload."""

import numpy as np
import pytest

from repro.engine.engine import InferenceEngine
from repro.engine.request import GenerationRequest
from repro.engine.server import ServingSimulator
from repro.models.registry import get_model


@pytest.fixture(scope="module")
def engine():
    return InferenceEngine(get_model("dsr1-qwen-1.5b"))


def _requests(count, output=64, prompt=100):
    return [GenerationRequest(i, prompt, output) for i in range(count)]


def _overload(engine, policy, deadlines):
    """Serve a 16-request burst through a batch-2 server."""
    sim = ServingSimulator(engine, max_batch_size=2, policy=policy)
    n = len(deadlines)
    return sim.run(_requests(n, output=96), np.zeros(n), np.array(deadlines))


class TestEdfVsFcfs:
    def test_edf_beats_fcfs_on_tight_deadlines(self, engine):
        # Half the burst has tight deadlines, half loose.  FCFS serves in
        # arrival order and blows the tight ones queued late; EDF pulls
        # them forward.
        deadlines = [200.0, 15.0] * 8
        fcfs = _overload(engine, "fcfs", deadlines)
        edf = _overload(engine, "edf", deadlines)
        assert edf.deadline_hit_rate > fcfs.deadline_hit_rate

    def test_edf_orders_by_deadline(self, engine):
        deadlines = [80.0, 60.0, 40.0, 20.0]
        report = _overload(engine, "edf", deadlines)
        starts = {r.request_id: r.start_s for r in report.served}
        # Tightest deadline admitted no later than the loosest.
        assert starts[3] <= starts[0]

    def test_fcfs_preserves_arrival_order(self, engine):
        sim = ServingSimulator(engine, max_batch_size=1, policy="fcfs")
        arrivals = np.array([0.0, 1.0, 2.0, 3.0])
        report = sim.run(_requests(4), arrivals)
        starts = [r.start_s for r in sorted(report.served,
                                            key=lambda r: r.request_id)]
        assert starts == sorted(starts)

    def test_unknown_policy_rejected(self, engine):
        with pytest.raises(ValueError):
            ServingSimulator(engine, policy="sjf")

    def test_policies_complete_same_work(self, engine):
        deadlines = [50.0] * 8
        fcfs = _overload(engine, "fcfs", deadlines)
        edf = _overload(engine, "edf", deadlines)
        assert fcfs.completed == edf.completed == 8
        assert fcfs.total_output_tokens == edf.total_output_tokens


class TestOfferedQps:
    def test_single_request_offered_qps_finite(self, engine):
        sim = ServingSimulator(engine, max_batch_size=2)
        report = sim.run(_requests(1), np.zeros(1))
        assert np.isfinite(report.offered_qps)
        assert report.offered_qps > 0

    def test_simultaneous_burst_offered_qps_finite(self, engine):
        sim = ServingSimulator(engine, max_batch_size=4)
        report = sim.run(_requests(4), np.zeros(4))
        assert np.isfinite(report.offered_qps)

    def test_empty_run_offered_qps_zero(self, engine):
        sim = ServingSimulator(engine, max_batch_size=2)
        report = sim.run([], np.zeros(0))
        assert report.offered_qps == 0.0

    def test_spread_arrivals_match_rate(self, engine):
        sim = ServingSimulator(engine, max_batch_size=4)
        arrivals = np.arange(10) * 2.0          # 0.5 req/s over 18 s
        report = sim.run(_requests(10), arrivals)
        assert report.offered_qps == pytest.approx(10 / 18.0)


class TestPrefillStall:
    def test_burst_attributes_stall(self, engine):
        # Batch-1 prefill: each admission stalls every already-live
        # decode stream, so a simultaneous burst must report a stall.
        sim = ServingSimulator(engine, max_batch_size=4)
        report = sim.run(_requests(4), np.zeros(4))
        assert report.prefill_stall_s > 0

    def test_lone_request_has_no_stall(self, engine):
        sim = ServingSimulator(engine, max_batch_size=4)
        report = sim.run(_requests(1), np.zeros(1))
        assert report.prefill_stall_s == 0.0

    def test_serial_arrivals_have_no_stall(self, engine):
        # Arrivals spaced beyond each request's full service time never
        # overlap, so no decode stream is ever stalled by a prefill.
        sim = ServingSimulator(engine, max_batch_size=4)
        report = sim.run(_requests(3, output=16), np.arange(3) * 100.0)
        assert report.prefill_stall_s == 0.0

    def test_stall_scales_with_live_batch(self, engine):
        small = ServingSimulator(engine, max_batch_size=2)
        large = ServingSimulator(engine, max_batch_size=8)
        a = small.run(_requests(8, output=128), np.zeros(8))
        b = large.run(_requests(8, output=128), np.zeros(8))
        assert b.prefill_stall_s > a.prefill_stall_s

    def test_queue_delay_excludes_own_prefill(self, engine):
        sim = ServingSimulator(engine, max_batch_size=2)
        report = sim.run(_requests(1), np.zeros(1))
        served = report.served[0]
        assert served.queue_delay_s == pytest.approx(0.0, abs=1e-9)
        assert served.prefill_s > 0
        assert served.service_s == pytest.approx(
            served.finish_s - served.start_s)


class TestHeapScheduler:
    def test_large_burst_served_completely(self, engine):
        # The two-heap scheduler must drain a large backlog without
        # losing or duplicating requests.
        sim = ServingSimulator(engine, max_batch_size=8)
        report = sim.run(_requests(64, output=16), np.zeros(64))
        assert report.completed == 64
        assert sorted(r.request_id for r in report.served) == list(range(64))

    def test_out_of_order_arrivals_normalized(self, engine):
        # Arrival arrays need not be sorted; the pending heap orders them.
        sim = ServingSimulator(engine, max_batch_size=1)
        arrivals = np.array([3.0, 0.0, 2.0, 1.0])
        report = sim.run(_requests(4, output=16), arrivals)
        starts = {r.request_id: r.start_s for r in report.served}
        assert starts[1] < starts[3] < starts[2] < starts[0]

    def test_deadline_hit_rate_counts_failures(self, engine):
        # ResilienceReport scores the offered population: a request that
        # never completes still counts against the hit rate.
        from repro.faults.injector import FaultInjector, FaultScheduleConfig
        faults = FaultInjector(FaultScheduleConfig(
            horizon_s=100.0, thermal_episodes=0, dvfs_drops=0,
            transient_slowdowns=0, kv_pressure_spikes=0, abort_rate=1.0),
            seed=0)
        sim = ServingSimulator(engine, max_batch_size=2, faults=faults)
        report = sim.run(_requests(2), np.zeros(2), np.array([60.0, 60.0]))
        assert report.completed == 0
        assert report.deadline_hit_rate == 0.0


class TestAllShedRun:
    def test_all_shed_run_reports_nan_latency(self, engine):
        # Every request expires in queue before admission (drop_expired
        # sheds them all); the empty completed set must yield nan
        # percentiles instead of crashing, and the deadline hit rate
        # must still score the shed population as misses.
        import math

        from repro.engine.server import _ServingRun
        from repro.faults.degradation import DegradationPolicy

        sim = ServingSimulator(
            engine, max_batch_size=2,
            degradation=DegradationPolicy(drop_expired=True))
        run = _ServingRun(sim)
        for i in range(4):
            # Admittable only from t=2.0, but dead at t=0.5.
            run.inject(GenerationRequest(i, 64, 32), arrival_s=0.0,
                       deadline_s=0.5, ready_s=2.0)
        run.drain()
        report = run.report()
        run.release()
        assert report.completed == 0
        assert report.shed == 4
        assert math.isnan(report.latency_percentile(95))
        assert report.deadline_hit_rate == 0.0
