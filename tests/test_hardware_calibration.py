"""Tests for the calibration registry itself."""

import pytest

from repro.hardware.calibration import (
    available_calibrations,
    calibration_for_model,
)


class TestRegistry:
    def test_six_entries(self):
        names = available_calibrations()
        assert len(names) == 6
        assert {"fp16-1.5b", "fp16-8b", "fp16-14b",
                "awq-1.5b", "awq-8b", "awq-14b"} == set(names)

    def test_known_key_lookup(self):
        calib = calibration_for_model("fp16-8b")
        assert calib.decode_weight_stream_efficiency == pytest.approx(0.844)

    def test_unknown_key_without_params_raises(self):
        with pytest.raises(KeyError):
            calibration_for_model("fp16-70b")

    @pytest.mark.parametrize("params,expected", [
        (1.0e9, "fp16-1.5b"), (7.0e9, "fp16-8b"), (30e9, "fp16-14b"),
    ])
    def test_fallback_bucketing(self, params, expected):
        assert calibration_for_model("fp16-unknown", params) == \
            calibration_for_model(expected)

    def test_awq_fallback_bucketing(self):
        assert calibration_for_model("awq-unknown", 7e9) == \
            calibration_for_model("awq-8b")


class TestPhysicalSanity:
    @pytest.mark.parametrize("key", ["fp16-1.5b", "fp16-8b", "fp16-14b",
                                     "awq-1.5b", "awq-8b", "awq-14b"])
    def test_efficiencies_are_fractions(self, key):
        calib = calibration_for_model(key)
        for value in (calib.prefill_weight_stream_efficiency,
                      calib.gemm_efficiency,
                      calib.attention_efficiency,
                      calib.decode_weight_stream_efficiency,
                      calib.kv_stream_efficiency,
                      calib.decode_gemm_efficiency):
            assert 0.0 < value <= 1.0

    def test_attention_far_below_gemm_efficiency(self):
        # Unfused attention at ~1% of peak vs ~80% GEMMs is what makes
        # Table IV's quadratic coefficient 60x larger than FLOP counting.
        for key in ("fp16-1.5b", "fp16-8b", "fp16-14b"):
            calib = calibration_for_model(key)
            assert calib.attention_efficiency < 0.05 * calib.gemm_efficiency

    def test_awq_streams_less_efficiently(self):
        # Dequantization overhead: AWQ decode stream efficiency sits
        # below the FP16 counterpart's.
        for size in ("1.5b", "8b", "14b"):
            fp16 = calibration_for_model(f"fp16-{size}")
            awq = calibration_for_model(f"awq-{size}")
            assert (awq.decode_weight_stream_efficiency
                    < fp16.decode_weight_stream_efficiency)

    def test_power_floors_below_bases(self):
        for key in ("fp16-8b", "fp16-14b"):
            power = calibration_for_model(key).power
            assert power.floor_w < power.decode_base_w
            assert power.floor_w <= power.prefill_base_w

    def test_overheads_grow_with_model_size(self):
        small = calibration_for_model("fp16-1.5b")
        large = calibration_for_model("fp16-14b")
        assert (small.per_sequence_overhead_s
                < large.per_sequence_overhead_s)
