"""Cross-check: the evaluator's closed-form metrics vs the step-loop engine.

The evaluator prices thousands of questions through cumulative tables
plus a context-slope correction; the engine walks every decode step.
Both must agree, or every Section V number silently drifts from the
Section IV substrate.
"""

import numpy as np
import pytest

from repro.engine.request import GenerationRequest
from repro.evaluation.evaluator import Evaluator
from repro.generation.control import base_control
from repro.models.registry import get_model
from repro.workloads.mmlu_redux import mmlu_redux


@pytest.fixture(scope="module")
def evaluated():
    benchmark = mmlu_redux(seed=0, size=60)
    evaluator = Evaluator(benchmark, seed=0)
    model = get_model("dsr1-llama-8b")
    result = evaluator.evaluate(model, base_control())
    return evaluator, model, result


class TestLatencyConsistency:
    def test_per_question_latency_matches_engine(self, evaluated):
        evaluator, model, result = evaluated
        engine = evaluator.engine_for(model)
        data = result.per_question
        for index in range(0, len(data.output_tokens), 7):
            request = GenerationRequest(
                request_id=index,
                prompt_tokens=int(data.prompt_tokens[index]),
                natural_length=int(data.output_tokens[index]),
            )
            exact = engine.generate(request)
            assert data.latency_seconds[index] == pytest.approx(
                exact.total_seconds, rel=0.02), index

    def test_per_question_energy_matches_engine(self, evaluated):
        evaluator, model, result = evaluated
        engine = evaluator.engine_for(model)
        data = result.per_question
        for index in range(0, len(data.output_tokens), 7):
            request = GenerationRequest(
                request_id=index,
                prompt_tokens=int(data.prompt_tokens[index]),
                natural_length=int(data.output_tokens[index]),
            )
            exact = engine.generate(request)
            assert data.energy_joules[index] == pytest.approx(
                exact.energy.total_energy_joules, rel=0.05), index

    def test_decode_share_matches(self, evaluated):
        evaluator, model, result = evaluated
        engine = evaluator.engine_for(model)
        data = result.per_question
        index = int(np.argmax(data.output_tokens))
        exact = engine.generate(GenerationRequest(
            0, int(data.prompt_tokens[index]),
            int(data.output_tokens[index])))
        closed_form_share = (1 - result.mean_prefill_seconds
                             / result.mean_latency_seconds)
        exact_share = exact.decode_seconds / exact.total_seconds
        assert closed_form_share == pytest.approx(exact_share, abs=0.02)
