"""Streaming trace driver: oracle equivalence, chunk/executor identity."""

import numpy as np
import pytest

from repro.fleet import (
    FleetGateway,
    FleetTraceReport,
    HealthConfig,
    HedgeConfig,
    build_fleet,
)
from repro.fleet.gateway import FleetGateway as _Gateway
from repro.workloads import PopulationConfig, population_trace, session_key

POLICIES = ("round-robin", "prefix-affinity")


def _trace(seed=7, requests=600):
    # The proven small-scale shape: diurnal session starts, multi-turn
    # sessions, regional prefixes that fit an 8 MB per-device cache.
    config = PopulationConfig(requests=requests, mean_turns=6.0, users=120,
                              base_sessions_per_s=0.4,
                              peak_sessions_per_s=0.56, period_s=600.0)
    return population_trace(np.random.default_rng(seed), config)


def _gateway(policy, **kwargs):
    fleet = build_fleet(4, mix="balanced", max_batch_size=1,
                        prefix_cache_mb=8.0)
    # Diurnal-peak queues legitimately build minutes of latency on
    # batch-1 devices; the raised spike threshold keeps the breaker out
    # of the equivalence study (breaker dynamics are scalar-only).
    kwargs.setdefault("health", HealthConfig(latency_spike_s=3600.0))
    return FleetGateway(fleet, policy=policy, **kwargs)


class TestOracleEquivalence:
    @pytest.mark.parametrize("policy", POLICIES)
    def test_vector_trace_matches_scalar_oracle(self, policy):
        trace = _trace()
        fast = _gateway(policy)
        report = fast.run_trace(trace)
        assert fast.last_mode == "vector"

        oracle = _gateway(policy, mode="scalar")
        expected = oracle.run_trace(trace)
        assert oracle.last_mode == "scalar"

        assert isinstance(report, FleetTraceReport)
        assert report.to_json() == expected.to_json()
        assert report.completed == trace.n
        assert report.lost == 0

    def test_prefix_affinity_exercises_the_cache(self):
        report = _gateway("prefix-affinity").run_trace(_trace())
        hits = sum(d.prefix_hits for d in report.devices)
        misses = sum(d.prefix_misses for d in report.devices)
        assert hits > 0
        assert misses > 0
        # Affinity keeps every session on one device, so repeat turns
        # hit strictly more often than round-robin's scattered sessions.
        scattered = _gateway("round-robin").run_trace(_trace())
        assert hits > sum(d.prefix_hits for d in scattered.devices)


class TestStreamingIdentity:
    @pytest.mark.parametrize("chunk_size", [7, 64, 100_000])
    def test_chunk_size_is_invisible(self, chunk_size):
        trace = _trace()
        baseline = _gateway("prefix-affinity").run_trace(trace)
        chunked = _gateway("prefix-affinity").run_trace(
            trace, chunk_size=chunk_size)
        assert chunked.to_json() == baseline.to_json()

    @pytest.mark.parametrize("executor", ["thread", "process"])
    def test_executor_choice_is_invisible(self, executor):
        trace = _trace()
        serial = _gateway("prefix-affinity").run_trace(trace)
        parallel = _gateway("prefix-affinity").run_trace(
            trace, jobs=3, executor=executor)
        assert parallel.to_json() == serial.to_json()

    def test_chunk_iterable_matches_trace_object(self):
        trace = _trace()
        from_trace = _gateway("round-robin").run_trace(trace)
        from_chunks = _gateway("round-robin").run_trace(trace.chunks(50))
        assert from_chunks.to_json() == from_trace.to_json()

    def test_parent_devices_stay_pristine(self):
        # Shares run on clones: the gateway's own devices must be
        # reusable (and byte-identical) for a second pass.
        gateway = _gateway("prefix-affinity")
        first = gateway.run_trace(_trace())
        second = _gateway("prefix-affinity").run_trace(_trace())
        assert first.to_json() == second.to_json()


class TestValidationAndEligibility:
    def test_argument_validation(self):
        gateway = _gateway("round-robin")
        trace = _trace(requests=8)
        with pytest.raises(ValueError):
            gateway.run_trace(trace, chunk_size=0)
        with pytest.raises(ValueError):
            gateway.run_trace(trace, jobs=0)
        with pytest.raises(ValueError):
            gateway.run_trace(trace, executor="fork")

    def test_mode_vector_rejects_ineligible_config(self):
        hedged = _gateway("round-robin", mode="vector",
                          hedge=HedgeConfig())
        assert not hedged.trace_eligible()
        with pytest.raises(ValueError):
            hedged.run_trace(_trace(requests=8))

    def test_least_outstanding_routes_through_the_scalar_core(self):
        gateway = _gateway("least-outstanding")
        assert not gateway.trace_eligible()
        report = gateway.run_trace(_trace(requests=40))
        assert gateway.last_mode == "scalar"
        assert report.completed == 40


class TestRoutingFastPath:
    def test_rendezvous_weight_caches_the_digest(self):
        gateway = _gateway("prefix-affinity")
        name = gateway.devices[0].name
        weight = gateway._rendezvous_weight("s42", name)
        assert weight == _Gateway._rendezvous_digest("s42", name)
        assert gateway._rdv_cache[("s42", name)] == weight
        # Repeat turns consume the cache, not sha256.
        gateway._rdv_cache[("s42", name)] = 1234
        assert gateway._rendezvous_weight("s42", name) == 1234

    def test_legacy_routing_bypasses_the_cache(self):
        gateway = _gateway("prefix-affinity", legacy_routing=True)
        name = gateway.devices[0].name
        assert (gateway._rendezvous_weight("s42", name)
                == _Gateway._rendezvous_digest("s42", name))
        assert gateway._rdv_cache == {}

    def test_trace_winner_matches_scalar_rendezvous(self):
        gateway = _gateway("prefix-affinity")
        for session in (0, 1, 7, 123, 99999):
            winner = gateway.devices[gateway._trace_winner(session)]
            key = session_key(session)
            expected = max(
                gateway.devices,
                key=lambda d: (_Gateway._rendezvous_digest(key, d.name),
                               d.name))
            assert winner.name == expected.name

    @pytest.mark.parametrize("policy", POLICIES)
    def test_optimized_routing_matches_legacy_scalar_run(self, policy):
        trace = _trace(requests=120)
        stream = trace.materialize()
        fast = _gateway(policy, mode="scalar")
        legacy = _gateway(policy, mode="scalar", legacy_routing=True)
        assert (fast.run(stream).to_json()
                == legacy.run(trace.materialize()).to_json())

    @pytest.mark.parametrize("policy", POLICIES)
    def test_cached_views_survive_the_verify_cross_check(self, policy):
        # verify_routing asserts every cached up/routable view against a
        # fresh scan at use time — a regression in the topology-version
        # invalidation fails here, not in a flaky report diff.
        trace = _trace(requests=120)
        gateway = _gateway(policy, mode="scalar", verify_routing=True)
        report = gateway.run(trace.materialize())
        assert report.completed == 120
        assert gateway._outstanding_total == 0
        assert all(v == 0 for v in gateway._outstanding.values())
