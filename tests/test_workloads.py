"""Tests for the synthetic benchmark suites."""

import numpy as np
import pytest

from repro.workloads import get_benchmark, list_benchmarks
from repro.workloads.aime import aime2024
from repro.workloads.math500 import math500
from repro.workloads.mmlu import mmlu
from repro.workloads.mmlu_redux import mmlu_redux
from repro.workloads.natural_plan import all_tasks, natural_plan
from repro.workloads.question import Benchmark, Question, make_questions


class TestSuiteSizes:
    def test_mmlu_redux_3k(self):
        assert len(mmlu_redux()) == 3000

    def test_mmlu_15k(self):
        assert len(mmlu(size=15000)) == 15000

    def test_aime_30(self):
        assert len(aime2024()) == 30

    def test_math500(self):
        assert len(math500()) == 500

    def test_natural_plan_tasks(self):
        tasks = all_tasks()
        assert {t.key for t in tasks} == {
            "naturalplan-calendar", "naturalplan-meeting", "naturalplan-trip"}


class TestDeterminism:
    def test_same_seed_same_questions(self):
        a = mmlu_redux(seed=3, size=100)
        b = mmlu_redux(seed=3, size=100)
        assert a.difficulties.tolist() == b.difficulties.tolist()
        assert a.prompt_tokens.tolist() == b.prompt_tokens.tolist()

    def test_different_seed_differs(self):
        a = mmlu_redux(seed=1, size=100)
        b = mmlu_redux(seed=2, size=100)
        assert a.difficulties.tolist() != b.difficulties.tolist()


class TestQuestionStructure:
    def test_difficulties_in_unit_interval(self):
        bench = mmlu_redux(size=500)
        assert (bench.difficulties >= 0).all()
        assert (bench.difficulties <= 1).all()

    def test_prompt_lengths_positive(self):
        bench = mmlu_redux(size=500)
        assert (bench.prompt_tokens > 0).all()

    def test_mmlu_is_four_choice(self):
        assert mmlu_redux(size=10).num_choices == 4

    def test_math_suites_free_form(self):
        assert aime2024().num_choices == 0
        assert math500().num_choices == 0

    def test_aime_skews_hard(self):
        assert aime2024(size=30).difficulties.mean() > 0.6

    def test_natural_plan_prompts_are_long(self):
        # Few-shot planning prompts run ~1.5-2.5k tokens.
        bench = natural_plan("meeting", size=200)
        assert bench.prompt_tokens.mean() > 1200

    def test_subject_mix(self):
        bench = mmlu_redux(size=1000)
        assert set(bench.subjects) == {
            "humanities", "social-sciences", "stem", "professional"}

    def test_question_validation(self):
        with pytest.raises(ValueError):
            Question(0, "s", difficulty=1.5, prompt_tokens=10)
        with pytest.raises(ValueError):
            Question(0, "s", difficulty=0.5, prompt_tokens=0)


class TestBenchmarkOperations:
    def test_subset_is_reproducible(self):
        bench = mmlu_redux(size=500)
        a = bench.subset(150, seed=1)
        b = bench.subset(150, seed=1)
        assert [q.qid for q in a.questions] == [q.qid for q in b.questions]

    def test_subset_too_large_rejected(self):
        with pytest.raises(ValueError):
            mmlu_redux(size=10).subset(11)

    def test_split(self):
        bench = mmlu_redux(size=100)
        head, tail = bench.split(30)
        assert len(head) == 30
        assert len(tail) == 70

    def test_split_bounds(self):
        with pytest.raises(ValueError):
            mmlu_redux(size=10).split(10)

    def test_empty_benchmark_rejected(self):
        with pytest.raises(ValueError):
            Benchmark(key="x", display_name="X", questions=())

    def test_capability_key_defaults_to_key(self):
        bench = mmlu_redux(size=10)
        assert bench.capability_key == "mmlu-redux"


class TestRegistry:
    def test_all_benchmarks_buildable(self):
        for key in list_benchmarks():
            bench = get_benchmark(key)
            assert len(bench) > 0
            assert bench.key == key

    def test_unknown_benchmark(self):
        with pytest.raises(KeyError):
            get_benchmark("gsm8k")

    def test_unknown_natural_plan_task(self):
        with pytest.raises(KeyError):
            natural_plan("picnic")


class TestMakeQuestions:
    def test_prompt_bounds_respected(self, rng):
        questions = make_questions(
            rng, 200, {"s": (2.0, 2.0)}, prompt_mean=100, prompt_sigma=1.0,
            num_choices=4, prompt_min=50, prompt_max=150,
        )
        prompts = np.array([q.prompt_tokens for q in questions])
        assert prompts.min() >= 50
        assert prompts.max() <= 150
