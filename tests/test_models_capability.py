"""Tests for the capability profiles and per-question probability model."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.models.capability import (
    AccuracyCurve,
    AnchorPoint,
    capability_profile,
    distractor_shares,
    has_profile,
    profiles_for_benchmark,
    question_success_probability,
    solve_mean_offset,
)


class TestAnchorPoint:
    def test_rejects_out_of_range_accuracy(self):
        with pytest.raises(ValueError):
            AnchorPoint(100, 1.2)

    def test_rejects_non_positive_tokens(self):
        with pytest.raises(ValueError):
            AnchorPoint(0, 0.5)


class TestAccuracyCurve:
    def test_hits_anchor_points(self):
        curve = AccuracyCurve([AnchorPoint(100, 0.3), AnchorPoint(1000, 0.6)])
        assert curve(100) == pytest.approx(0.3)
        assert curve(1000) == pytest.approx(0.6)

    def test_clamps_outside_range(self):
        curve = AccuracyCurve([AnchorPoint(100, 0.3), AnchorPoint(1000, 0.6)])
        assert curve(10) == pytest.approx(0.3)
        assert curve(50_000) == pytest.approx(0.6)

    def test_interpolation_stays_in_envelope(self):
        curve = AccuracyCurve([AnchorPoint(100, 0.3), AnchorPoint(400, 0.5),
                               AnchorPoint(1000, 0.6)])
        grid = np.geomspace(100, 1000, 64)
        values = np.atleast_1d(curve(grid))
        assert (values >= 0.3 - 1e-9).all()
        assert (values <= 0.6 + 1e-9).all()

    def test_vectorized_call(self):
        curve = AccuracyCurve([AnchorPoint(100, 0.3), AnchorPoint(1000, 0.6)])
        values = curve(np.array([50.0, 100.0, 1000.0, 2000.0]))
        assert values.shape == (4,)

    def test_single_anchor_is_constant(self):
        curve = AccuracyCurve([AnchorPoint(40, 0.61)])
        assert curve(5) == curve(40) == curve(5000) == pytest.approx(0.61)

    def test_duplicate_tokens_rejected(self):
        with pytest.raises(ValueError):
            AccuracyCurve([AnchorPoint(100, 0.3), AnchorPoint(100, 0.4)])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            AccuracyCurve([])

    def test_saturation_tokens_within_range(self):
        curve = AccuracyCurve([AnchorPoint(100, 0.3), AnchorPoint(400, 0.55),
                               AnchorPoint(1500, 0.6)])
        sat = curve.saturation_tokens
        assert 100 <= sat <= 1500


class TestPaperAnchors:
    """The profiles must reproduce the paper's measured accuracies."""

    @pytest.mark.parametrize("model,tokens,accuracy", [
        ("dsr1-qwen-1.5b", 740.2, 0.383),
        ("dsr1-llama-8b", 811.1, 0.617),
        ("dsr1-qwen-14b", 1317.8, 0.806),
    ])
    def test_base_accuracy(self, model, tokens, accuracy):
        profile = capability_profile(model, "mmlu-redux")
        assert profile.completed(tokens) == pytest.approx(accuracy, abs=0.01)

    @pytest.mark.parametrize("model,budget,accuracy", [
        ("dsr1-qwen-1.5b", 128, 0.159),
        ("dsr1-qwen-1.5b", 256, 0.232),
        ("dsr1-llama-8b", 128, 0.379),
        ("dsr1-qwen-14b", 256, 0.586),
    ])
    def test_hard_budget_accuracy(self, model, budget, accuracy):
        profile = capability_profile(model, "mmlu-redux")
        assert profile.hard(budget) == pytest.approx(accuracy, abs=0.005)

    def test_nr_anchor(self):
        profile = capability_profile("dsr1-llama-8b", "mmlu-redux")
        assert profile.nr.accuracy == pytest.approx(0.510)

    def test_1p5b_overthinking_declines(self):
        # NC-128 makes the 1.5B ramble to 1474 tokens and LOSE accuracy.
        profile = capability_profile("dsr1-qwen-1.5b", "mmlu-redux")
        assert profile.completed(1474) < profile.completed(737)

    def test_nr_beats_base_for_1p5b(self):
        # Takeaway: suppressing reasoning helps very small models.
        profile = capability_profile("dsr1-qwen-1.5b", "mmlu-redux")
        assert profile.nr.accuracy > profile.completed(740.2)

    def test_direct_anchor_llama(self):
        profile = capability_profile("llama3.1-8b-it", "mmlu-redux")
        assert profile.direct.accuracy == pytest.approx(0.583)

    def test_accuracy_for_mode_dispatch(self):
        profile = capability_profile("dsr1-llama-8b", "mmlu-redux")
        assert profile.accuracy_for_mode("completed", 811) == pytest.approx(
            0.617, abs=0.01)
        assert profile.accuracy_for_mode("hard", 128) == pytest.approx(0.379)
        assert profile.accuracy_for_mode("nr", 0) == pytest.approx(0.510)

    def test_missing_direct_raises(self):
        profile = capability_profile("dsr1-llama-8b", "mmlu-redux")
        with pytest.raises(ValueError):
            profile.accuracy_for_mode("direct", 0)

    def test_unknown_mode_raises(self):
        profile = capability_profile("dsr1-llama-8b", "mmlu-redux")
        with pytest.raises(ValueError):
            profile.accuracy_for_mode("weird", 0)

    def test_unknown_pair_raises(self):
        with pytest.raises(KeyError):
            capability_profile("dsr1-llama-8b", "no-such-benchmark")

    def test_has_profile(self):
        assert has_profile("dsr1-llama-8b", "mmlu-redux")
        assert not has_profile("dsr1-llama-8b", "naturalplan-nothing")

    def test_profiles_for_benchmark(self):
        profiles = profiles_for_benchmark("mmlu")
        assert len(profiles) == 6  # 3 fp16 + 3 AWQ

    def test_mmlu15k_anchors(self):
        profile = capability_profile("dsr1-qwen-14b", "mmlu")
        assert profile.completed(1145.4) == pytest.approx(0.8659, abs=0.005)
        assert profile.hard(128) == pytest.approx(0.283, abs=0.005)

    def test_naturalplan_anchor(self):
        profile = capability_profile("dsr1-qwen-14b", "naturalplan-meeting")
        assert profile.completed(1494) == pytest.approx(0.193, abs=0.01)
        assert profile.num_choices == 0


class TestQuestionProbabilities:
    def test_mean_preserved(self, rng):
        difficulties = rng.beta(2.0, 2.0, size=4000)
        p = question_success_probability(0.45, difficulties, beta=2.5)
        assert p.mean() == pytest.approx(0.45, abs=0.01)

    def test_easy_questions_more_likely(self, rng):
        difficulties = np.array([0.1, 0.9])
        p = question_success_probability(0.5, difficulties, beta=2.5)
        assert p[0] > p[1]

    def test_zero_beta_is_uniform(self, rng):
        difficulties = rng.random(100)
        p = question_success_probability(0.3, difficulties, beta=0.0)
        assert np.allclose(p, 0.3, atol=1e-6)

    def test_probabilities_in_unit_interval(self, rng):
        difficulties = rng.random(500)
        p = question_success_probability(0.9, difficulties, beta=5.0)
        assert (p > 0).all() and (p < 1).all()

    def test_solve_mean_offset_converges(self, rng):
        difficulties = rng.beta(2.6, 2.0, size=2000)
        delta = solve_mean_offset(0.6, difficulties, beta=3.0)
        p = question_success_probability(0.6, difficulties, beta=3.0)
        assert abs(float(p.mean()) - 0.6) < 0.01
        assert -10 < delta < 10

    def test_distractor_shares_clipped(self):
        profile = capability_profile("dsr1-llama-8b", "mmlu-redux")
        shares = distractor_shares(profile, np.array([0.0, 0.5, 1.0, 5.0 / 5]))
        assert (shares >= 0).all() and (shares <= 0.95).all()

    def test_distractor_grows_with_difficulty(self):
        profile = capability_profile("dsr1-llama-8b", "mmlu-redux")
        shares = distractor_shares(profile, np.array([0.1, 0.9]))
        assert shares[1] > shares[0]


class TestCurveEdges:
    def test_zero_tokens_clamp_to_low_anchor(self):
        curve = AccuracyCurve([AnchorPoint(100, 0.3), AnchorPoint(1000, 0.6)])
        assert curve(0) == pytest.approx(0.3)

    def test_negative_tokens_clamp_to_low_anchor(self):
        curve = AccuracyCurve([AnchorPoint(100, 0.3), AnchorPoint(1000, 0.6)])
        assert curve(-64) == pytest.approx(0.3)
        vec = curve(np.array([-1.0, 0.0, 99.9]))
        assert np.allclose(vec, 0.3)

    def test_mode_dispatch_at_zero_tokens(self):
        # A fully truncated chain (0 granted tokens) must price as the
        # curve's low anchor, not blow up in the log-token interpolator.
        profile = capability_profile("dsr1-llama-8b", "mmlu-redux")
        assert profile.accuracy_for_mode("hard", 0) == pytest.approx(
            profile.hard.anchors[0].accuracy)
        assert 0.0 <= profile.accuracy_for_mode("completed", 0) <= 1.0


class TestCurveMonotonicityProperty:
    """PCHIP on log-tokens must preserve each segment's direction."""

    @given(accs=st.lists(st.floats(0.0, 1.0), min_size=3, max_size=3),
           frac_a=st.floats(0.0, 1.0), frac_b=st.floats(0.0, 1.0))
    @settings(max_examples=60, deadline=None)
    def test_monotone_between_adjacent_anchors(self, accs, frac_a, frac_b):
        tokens = (100.0, 400.0, 1600.0)
        curve = AccuracyCurve(
            [AnchorPoint(t, a) for t, a in zip(tokens, accs)])
        lo, hi = sorted((frac_a, frac_b))
        for (t0, a0), (t1, a1) in zip(
                zip(tokens, accs), zip(tokens[1:], accs[1:])):
            # Two probe points inside this segment, log-spaced like the
            # interpolator itself, with x0 <= x1.
            x0 = t0 * (t1 / t0) ** lo
            x1 = t0 * (t1 / t0) ** hi
            y0, y1 = curve(x0), curve(x1)
            if a0 <= a1:
                assert y1 >= y0 - 1e-9
            else:
                assert y1 <= y0 + 1e-9
            assert min(a0, a1) - 1e-9 <= y0 <= max(a0, a1) + 1e-9
