#!/usr/bin/env python3
"""Quickstart: simulate reasoning-LLM inference on a Jetson AGX Orin.

Runs a single reasoning query through the engine, then reproduces the
paper's core methodology in miniature: characterize the device, fit the
analytical latency model, and use it to answer "how many tokens can I
afford in my latency budget?".
"""

from repro import (
    GenerationRequest,
    InferenceEngine,
    characterize_model,
    get_model,
)


def main() -> None:
    model = get_model("dsr1-llama-8b")
    engine = InferenceEngine(model)

    print(f"Model:  {model.display_name} "
          f"({model.param_count / 1e9:.1f}B params, "
          f"{model.weight_bytes / 1e9:.1f} GB streamed per step)")
    print(f"Device: {engine.soc.name}")
    print()

    # --- one reasoning query -------------------------------------------
    request = GenerationRequest(
        request_id=0,
        prompt_tokens=150,    # an MMLU-style question
        natural_length=800,   # a typical reasoning chain
    )
    result = engine.generate(request)
    report = result.energy
    print("One reasoning query (150 prompt tokens, 800 generated):")
    print(f"  prefill      {result.prefill_seconds * 1e3:8.1f} ms")
    print(f"  decode       {result.decode_seconds:8.1f} s  "
          f"({result.tokens_per_second:.1f} tok/s)")
    print(f"  energy       {report.total_energy_joules:8.1f} J  "
          f"(mean {report.mean_power_w:.1f} W)")
    print(f"  decode share {result.decode_seconds / result.total_seconds:8.1%}"
          "  <- Takeaway #2: decode dominates")
    print()

    # --- characterize & fit (Section IV) -------------------------------
    print("Characterizing the device and fitting the analytical models...")
    characterization = characterize_model(model)
    latency = characterization.latency
    print(f"  prefill fit: L = {latency.prefill.a:.2e}*I_pad^2 + "
          f"{latency.prefill.b:.2e}*I_pad + {latency.prefill.c:.3f}")
    print(f"  decode fit:  TBT = {latency.decode.m:.2e}*I + "
          f"{latency.decode.n:.4f}")
    print()

    # --- invert the model: latency budget -> token budget ---------------
    print("Token budgets that fit a latency deadline (prompt = 150 tokens):")
    for budget_s in (1.0, 5.0, 30.0, 120.0):
        tokens = latency.max_output_tokens(150, budget_s)
        print(f"  {budget_s:6.1f} s  ->  up to {tokens:5d} reasoning tokens")


if __name__ == "__main__":
    main()
