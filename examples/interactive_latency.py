#!/usr/bin/env python3
"""Interactive-UX latency: TTFT and TPOT across the model zoo.

A voice assistant or chat UI cares about two numbers: how soon the first
token appears (TTFT) and how fast text flows afterwards (TPOT ~ the
paper's TBT).  This example profiles both across models and shows how a
deadline-aware controller and speculative decoding change the
interactive feel on the edge device.
"""

from repro import InferenceEngine, GenerationRequest, get_model
from repro.core.characterize import characterize_model
from repro.core.controller import DeadlineController
from repro.engine.streaming import streaming_metrics
from repro.extensions.speculative import best_gamma

MODELS = ("qwen2.5-1.5b-it", "dsr1-qwen-1.5b", "dsr1-llama-8b",
          "dsr1-qwen-14b")
PROMPT_TOKENS = 300
OUTPUT_TOKENS = 400


def main() -> None:
    print(f"Interactive profile ({PROMPT_TOKENS} prompt tokens, "
          f"{OUTPUT_TOKENS} generated):")
    print(f"{'model':<18s} {'TTFT':>8s} {'TPOT':>9s} {'full reply':>11s} "
          f"{'reading pace':>13s}")
    for name in MODELS:
        engine = InferenceEngine(get_model(name))
        metrics = streaming_metrics(engine, GenerationRequest(
            0, PROMPT_TOKENS, OUTPUT_TOKENS))
        words_per_minute = 60.0 / metrics.tpot_s * 0.75  # ~0.75 words/token
        print(f"{name:<18s} {metrics.ttft_s * 1e3:7.0f}ms "
              f"{metrics.tpot_s * 1e3:8.1f}ms {metrics.total_s:10.1f}s "
              f"{words_per_minute:11.0f}wpm")
    print()
    print("Humans read at ~200-300 wpm: the 1.5B streams faster than anyone")
    print("reads, the 8B holds a comfortable pace, the 14B trails a reader.")
    print()

    # Deadline-aware thinking for a chat with a 10-second patience budget.
    model = get_model("dsr1-llama-8b")
    engine = InferenceEngine(model)
    latency = characterize_model(model).latency
    controller = DeadlineController(latency)
    print("Chat with a 10 s patience budget (DSR1-Llama-8B):")
    for prompt in (100, 1000, 3000):
        outcome = controller.run(engine, prompt, 800, deadline_s=10.0)
        print(f"  prompt {prompt:5d} tokens -> thinks {outcome.thinking_tokens:3d} "
              f"tokens, replies in {outcome.elapsed_s:5.2f}s "
              f"({'cut short' if outcome.intervened else 'completed'})")
    print()

    # Speculative decoding: the one lever that changes TPOT itself.
    draft = InferenceEngine(get_model("dsr1-qwen-1.5b"))
    report = best_gamma(engine, draft)
    print(f"With speculative decoding (gamma={report.config.gamma}, 1.5B "
          f"draft): TPOT {report.baseline_tbt_s * 1e3:.0f}ms -> "
          f"{report.effective_tbt_s * 1e3:.0f}ms "
          f"({report.speedup:.2f}x), i.e. "
          f"{60.0 / report.effective_tbt_s * 0.75:.0f} wpm.")


if __name__ == "__main__":
    main()
