#!/usr/bin/env python3
"""Tuning reasoning-token budgets for a latency-constrained service.

You are deploying a question-answering service on an edge box with a
hard 20-second SLA.  This example walks the Section V toolkit:

1. evaluate the token-control strategies (Base / hard / soft / NR) for
   each candidate model on MMLU-Redux,
2. filter to configurations meeting the SLA and rank by accuracy,
3. check whether parallel test-time scaling (majority voting) can buy
   more accuracy inside the same wall-clock.
"""

import numpy as np

from repro import Evaluator, get_model
from repro.generation import hard_budget, nr_control, standard_controls
from repro.scaling.parallel import parallel_scaling_curve
from repro.workloads import mmlu_redux

SLA_SECONDS = 20.0
MODELS = ("dsr1-qwen-1.5b", "dsr1-llama-8b", "dsr1-qwen-14b", "l1-max")


def main() -> None:
    benchmark = mmlu_redux(seed=0, size=1500)
    evaluator = Evaluator(benchmark, seed=0)

    print(f"Evaluating the control grid on {benchmark.display_name}...")
    results = []
    for name in MODELS:
        model = get_model(name)
        for control in standard_controls():
            if name == "l1-max" and control.label == "NR":
                continue
            results.append(evaluator.evaluate(model, control))

    print()
    print(f"Configurations meeting the {SLA_SECONDS:.0f}s SLA, by accuracy:")
    print(f"{'configuration':<28s} {'acc':>6s} {'tokens':>7s} {'latency':>8s} "
          f"{'$/1M tok':>9s}")
    meeting_sla = sorted(
        (r for r in results if r.mean_latency_seconds <= SLA_SECONDS),
        key=lambda r: -r.accuracy,
    )
    for result in meeting_sla[:8]:
        print(f"{result.label:<28s} {result.accuracy * 100:5.1f}% "
              f"{result.mean_output_tokens:7.0f} "
              f"{result.mean_latency_seconds:7.2f}s "
              f"{result.cost_per_million_tokens:9.4f}")

    best = meeting_sla[0]
    print()
    print(f"Best sequential config: {best.label} at "
          f"{best.accuracy * 100:.1f}% / {best.mean_latency_seconds:.1f}s")

    # ------------------------------------------------------------------
    # Can parallel scaling beat it within the same wall-clock?
    # ------------------------------------------------------------------
    print()
    print("Trying parallel scaling (majority voting) under the same SLA:")
    model = get_model("dsr1-llama-8b")
    control = hard_budget(128)
    p, w, g, det = evaluator.question_statistics(model, control)
    engine = evaluator.engine_for(model)
    rng = np.random.default_rng(0)
    points = parallel_scaling_curve(
        engine, p, w, benchmark.num_choices,
        scale_factors=(1, 2, 4, 8, 16, 32),
        output_budget=128,
        prompt_tokens=int(np.median(benchmark.prompt_tokens)),
        rng=rng, garbage_share=g, determinism=det,
    )
    for point in points:
        marker = " <- over SLA" if point.decode_seconds > SLA_SECONDS else ""
        print(f"  SF={point.scale_factor:3d}: acc={point.accuracy * 100:5.1f}% "
              f"decode={point.decode_seconds:6.2f}s "
              f"power={point.mean_power_w:5.1f}W{marker}")
    feasible = [pt for pt in points if pt.decode_seconds <= SLA_SECONDS]
    champion = max(feasible, key=lambda pt: pt.accuracy)
    print()
    print(f"Parallel champion: DSR1-Llama-8B 128T x SF={champion.scale_factor} "
          f"at {champion.accuracy * 100:.1f}% — Takeaway #9: parallel "
          f"scaling buys accuracy at minimal latency overhead.")


if __name__ == "__main__":
    main()
