#!/usr/bin/env python3
"""The paper's motivating scenario: an assistive robot with mixed deadlines.

A personal assistive robot (Section I / Fig. 1) fields tasks whose
latency budgets span four orders of magnitude — "Avoid that obstacle
now!" gives ~0.5 s, "Help me prepare dinner within 5 minutes" affords
real planning, and "Plan my weekly schedule" can think for minutes.

The deployment planner turns each deadline into the accuracy-optimal
configuration: which model to run, which token-control strategy, and
exactly how many reasoning tokens to allow — using the analytical
latency models fitted on the edge GPU, never a lookup of discrete
presets.
"""

from repro import build_planner

#: (task description, latency budget in seconds, prompt tokens).
ROBOT_TASKS = (
    ("Avoid that obstacle now!", 0.8, 48),
    ("Hand me the red mug", 2.0, 96),
    ("What's a safe route around the spill?", 5.0, 128),
    ("Help me prepare dinner within 5 minutes", 20.0, 256),
    ("Summarize today's sensor anomalies", 60.0, 512),
    ("Plan my weekly schedule", 300.0, 384),
)


def main() -> None:
    print("Characterizing candidate models on the Jetson AGX Orin and")
    print("fitting latency models (Section IV)... this runs once at boot.")
    planner = build_planner(seed=0)
    print()

    header = (f"{'task':<42s} {'budget':>7s}  {'configuration':<28s} "
              f"{'pred lat':>8s} {'pred acc':>8s}")
    print(header)
    print("-" * len(header))
    for task, budget_s, prompt_tokens in ROBOT_TASKS:
        decision = planner.plan(budget_s, prompt_tokens=prompt_tokens)
        if decision.feasible:
            config = decision.chosen.label
            latency = f"{decision.predicted_latency_s:7.2f}s"
            accuracy = f"{decision.predicted_accuracy * 100:7.1f}%"
        else:
            config, latency, accuracy = "(no feasible config)", "-", "-"
        print(f"{task:<42s} {budget_s:6.1f}s  {config:<28s} "
              f"{latency:>8s} {accuracy:>8s}")

    print()
    print("Note how the planner moves continuously along the frontier:")
    print("tight deadlines get budget-aware L1 or direct small models;")
    print("generous ones escalate to larger reasoning models with longer")
    print("chains — the continuous tradeoff Fig. 1 calls for.")


if __name__ == "__main__":
    main()
