#!/usr/bin/env python3
"""Optimization advisor: where is the headroom on this deployment?

Given a model and workload shape, this example runs the Section VI
optimization models — speculative decoding, CPU offload, DLA offload,
weight prefetching — and a serving-load sweep, then summarizes which
levers are worth pulling and which are dead ends on a bandwidth-bound
edge platform.
"""

import numpy as np

from repro import InferenceEngine, get_model
from repro.engine.server import ServingSimulator
from repro.extensions.heterogeneous import cpu_offload_speedup, dla_offload_sweep
from repro.extensions.prefetch import prefetch_decode_report, prefetch_prefill_report
from repro.extensions.speculative import best_gamma

MODEL = "dsr1-llama-8b"
DRAFT = "dsr1-qwen-1.5b"


def main() -> None:
    engine = InferenceEngine(get_model(MODEL))
    draft = InferenceEngine(get_model(DRAFT))
    print(f"Deployment: {engine.model.display_name} on {engine.soc.name}")
    print(f"Baseline decode: {1.0 / engine.kernels.mean_tbt(engine.profile, 512):.1f} tok/s")
    print()

    print("== Single-stream decode levers " + "=" * 34)
    spec = best_gamma(engine, draft)
    print(f"speculative decoding ({DRAFT} draft, gamma={spec.config.gamma}):"
          f"  {spec.speedup:.2f}x")
    cpu = cpu_offload_speedup(engine)
    print(f"CPU offload of lightweight kernels:                    "
          f"{cpu.speedup:.2f}x")
    decode_prefetch = prefetch_decode_report(engine)
    print(f"weight prefetching (decode):                           "
          f"{decode_prefetch.speedup:.2f}x  <- nothing to hide behind")
    dla = {plan.batch: plan for plan in dla_offload_sweep(engine)}
    print(f"DLA offload at batch 1 / 512:                          "
          f"{dla[1].speedup:.2f}x / {dla[512].speedup:.2f}x")
    print()

    print("== Prefill levers " + "=" * 47)
    for input_len in (512, 2048):
        report = prefetch_prefill_report(engine, input_len)
        print(f"weight prefetching (prefill @{input_len}):"
              f"{'':>18s}{report.speedup:.2f}x")
    print()

    print("== Throughput lever: accept more load " + "=" * 27)
    simulator = ServingSimulator(engine, max_batch_size=8)
    for qps in (0.02, 0.05, 0.1):
        rng = np.random.default_rng(0)
        report = simulator.run_poisson(rng, qps, 30, output_tokens=256)
        print(f"offered {qps:5.2f} qps: {report.tokens_per_second:6.1f} tok/s "
              f"aggregate, p95 latency {report.latency_percentile(95):6.1f}s")
    print()

    print("Verdict: on a bandwidth-bound edge GPU, speculative decoding and")
    print("request batching are the real levers; prefetching helps only the")
    print("(already tiny) prefill phase, and the DLA engines cannot absorb a")
    print("memory-bound decode — they only pay off at very large batch.")


if __name__ == "__main__":
    main()
