#!/usr/bin/env python3
"""Edge vs cloud economics for a fleet of reasoning agents (Section III-B).

A company runs a fleet of autonomous agents that each issue math-heavy
reasoning queries (AIME-difficulty). Should inference run on-board
Jetson Orins or against a cloud reasoning API?  This example reproduces
the paper's cost methodology — energy at $0.15/kWh plus hardware
amortized at $0.045/hour — and shows how batching concurrent agents
onto one device drives $/1M tokens down by another order of magnitude.
"""

import numpy as np

from repro import CostModel, GenerationRequest, InferenceEngine, get_model
from repro.core.cost import o1_preview_pricing, o4_mini_pricing
from repro.generation import base_control
from repro.generation.length import LengthModel

QUERIES = 30          # one AIME-sized batch of reasoning jobs
PROMPT_TOKENS = 120


def run_edge(batch_size: int, seed: int = 0):
    """Serve the workload on one Jetson Orin at a given concurrency."""
    model = get_model("deepscaler-1.5b")
    engine = InferenceEngine(model)
    lengths = LengthModel(model, "aime2024")
    rng = np.random.default_rng(seed)
    naturals = lengths.sample(base_control(), rng, size=QUERIES)
    requests = [
        GenerationRequest(i, PROMPT_TOKENS, int(n))
        for i, n in enumerate(np.asarray(naturals))
    ]
    return engine.run_batch(requests, max_batch_size=batch_size)


def main() -> None:
    print(f"Workload: {QUERIES} reasoning queries "
          f"(~6.5k tokens each, DeepScaleR-1.5B)")
    print()
    print(f"{'deployment':<34s} {'wallclock':>10s} {'energy':>9s} "
          f"{'tok/s':>7s} {'$ / 1M tokens':>14s}")
    print("-" * 79)

    cost_model = CostModel.single_stream()
    for batch in (1, 4, 10, 30):
        report = run_edge(batch)
        cost = cost_model.cost_per_million_tokens(
            energy_joules=report.total_energy_joules,
            wallclock_seconds=report.wallclock_seconds,
            tokens=report.total_tokens,
        )
        print(f"{'Jetson Orin, batch ' + str(batch):<34s} "
              f"{report.wallclock_seconds:9.0f}s "
              f"{report.total_energy_joules / 1e3:8.2f}kJ "
              f"{report.tokens_per_second:7.1f} "
              f"{cost:14.4f}")

    for pricing in (o4_mini_pricing(), o1_preview_pricing()):
        print(f"{pricing.name:<34s} {'-':>10s} {'-':>9s} {'-':>7s} "
              f"{pricing.output_usd_per_mtok:14.2f}")

    print()
    edge = run_edge(30)
    edge_cost = cost_model.cost_per_million_tokens(
        edge.total_energy_joules, edge.wallclock_seconds, edge.total_tokens)
    advantage = o1_preview_pricing().output_usd_per_mtok / edge_cost
    print(f"Batched edge deployment undercuts o1-preview by ~{advantage:,.0f}x")
    print("per output token — while DeepScaleR-1.5B *outperforms* it on")
    print("AIME2024 (43.1% vs 40.0%) thanks to its math-focused RL tuning.")


if __name__ == "__main__":
    main()
