"""Ablation bench: hybrid sequential x parallel scaling under budgets."""

from conftest import run_once, show

from repro.experiments import hybrid_scaling
from repro.scaling.hybrid import best_under_latency, sequential_only


def test_ablation_hybrid_scaling(benchmark):
    surface = run_once(benchmark, hybrid_scaling.run_hybrid_surface,
                       seed=0, size=1500)
    show(hybrid_scaling.hybrid_table(surface))
    # At tight wall-clock budgets the hybrid strategy (short chains, wide
    # voting) decisively beats pure sequential scaling...
    hybrid = best_under_latency(surface, 20.0)
    pure = best_under_latency(sequential_only(surface), 20.0)
    assert hybrid.accuracy > pure.accuracy + 0.05
    assert hybrid.scale_factor > 1
    # ...and the chosen chain length sits near the Section V-C inflection
    # rather than at the latency-budget maximum.
    assert hybrid.token_budget <= 256
