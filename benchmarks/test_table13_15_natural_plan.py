"""Bench: Tables XIII-XV — Natural-Plan planning tasks."""

from conftest import run_once, show

from repro.experiments import natural_plan


def test_table13_15_natural_plan(benchmark):
    baseline = run_once(benchmark, natural_plan.run_baseline, seed=0)
    budgeted = natural_plan.run_budgeted(seed=0)
    direct = natural_plan.run_direct(seed=0)
    show(natural_plan.table13(baseline))
    show(natural_plan.table14(budgeted))
    show(natural_plan.table15(direct))
    # Planning is hard: every reasoning config stays under 25%.
    assert all(r.accuracy < 0.25 for r in baseline)
    # Budgeting preserves most accuracy at a fraction of the latency
    # for the larger models.
    base_map = {(r.benchmark, r.model): r for r in baseline}
    for result in budgeted:
        if "14b" in result.model:
            base = base_map[(result.benchmark, result.model)]
            assert result.mean_latency_seconds < base.mean_latency_seconds / 2
            assert result.accuracy > base.accuracy - 0.05
    # Direct Qwen2.5-14B beats all reasoning configs on calendar.
    calendar_direct = max(r.accuracy for r in direct
                          if "calendar" in r.benchmark)
    calendar_reasoning = max(r.accuracy for r in baseline
                             if "calendar" in r.benchmark)
    assert calendar_direct > calendar_reasoning
