"""Ablation bench: Jetson power modes vs inference latency."""

from conftest import run_once, show

from repro.experiments import power_modes


def test_ablation_power_modes(benchmark):
    points = run_once(benchmark, power_modes.run_power_mode_study)
    show(power_modes.power_mode_table(points))
    for name in power_modes.MODELS:
        per_model = {p.mode: p for p in points if p.model == name}
        # Latency is monotone in the envelope.
        ordered = [per_model[m].query_latency_s
                   for m in ("MAXN", "50W", "30W", "15W")]
        assert ordered == sorted(ordered)
        # Dropping from MAXN to 15W costs ~1.4-1.6x end-to-end.
        assert 1.2 < ordered[-1] / ordered[0] < 2.2
