"""Bench: Fig. 3 + Table V — decode latency / TBT sweep and linear fit."""

import pytest
from conftest import run_once, show

from repro.core.latency_model import PAPER_DECODE_COEFFICIENTS
from repro.experiments import decode_latency


def test_fig03_table05_decode(benchmark, characterizations):
    table = run_once(benchmark, decode_latency.table5, characterizations)
    show(table)
    show(decode_latency.figure3a(characterizations))
    show(decode_latency.figure3b(characterizations))
    for name, result in characterizations.items():
        paper = PAPER_DECODE_COEFFICIENTS[name]
        assert result.latency.decode.n == pytest.approx(paper.n, rel=0.10)
    # Fig. 3b: only a few percent TBT growth over 4k context.
    increase = decode_latency.tbt_increase_with_context(characterizations)
    assert 0.0 < increase < 0.10
