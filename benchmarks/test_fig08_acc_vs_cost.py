"""Bench: Fig. 8 — accuracy vs cost per million tokens."""

from conftest import run_once, show

from repro.experiments import tradeoff_frontier


def test_fig08_accuracy_vs_cost(benchmark, tradeoff_results):
    figure = run_once(benchmark, tradeoff_frontier.figure8, tradeoff_results)
    show(figure)
    by_label = {r.label: r for r in tradeoff_results}
    # Section V-D: below ~$0.01/1M only ultra-lightweight models; the 8B
    # and 14B reasoning configs live beyond ~$0.1/1M.
    cheap = [r for r in tradeoff_results if r.cost_per_million_tokens < 0.01]
    assert cheap and all("1.5B" in r.display_name or "L1" in r.display_name
                         for r in cheap)
    assert by_label["DSR1-Qwen-14B Base"].cost_per_million_tokens > 0.1
    assert by_label["DSR1-Llama-8B Base"].cost_per_million_tokens > 0.05
