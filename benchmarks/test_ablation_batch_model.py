"""Ablation bench: batch-aware decode latency model validation."""

from conftest import run_once, show

from repro.experiments import batch_latency


def test_ablation_batch_latency_model(benchmark):
    rows = run_once(benchmark, batch_latency.run_batch_model_study, seed=0)
    show(batch_latency.batch_model_table(rows))
    for row in rows:
        # Fig. 10a's band: ~2x decode latency at SF=64.
        assert 1.5 < row.multiplier_at_64 < 2.6
        # The interpolated surface predicts unfitted batch sizes to well
        # under Table VI's 2% bar (the roofline is affine in batch, so
        # the surface is near-exact by construction).
        assert row.held_out_mape_pct < 1.0
        # Per-sequence overheads accumulate into n(B).
        assert row.n_at_64 > row.n_at_1
