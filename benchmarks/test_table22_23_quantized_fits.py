"""Bench: Tables XXII/XXIII — fitted power/energy models (AWQ-W4)."""

from conftest import run_once, show

from repro.experiments import quantization


def test_table22_23_quantized_fits(benchmark, quantized_characterizations):
    prefill_table, decode_table = run_once(
        benchmark, quantization.table22_23, quantized_characterizations)
    show(prefill_table)
    show(decode_table)
    assert len(prefill_table.rows) == 3
    assert len(decode_table.rows) == 3
    # Decode power log slopes positive for every quantized model
    # (Table XXIII's log form).
    for row in decode_table.rows:
        assert row[1] > 0
