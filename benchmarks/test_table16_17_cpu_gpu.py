"""Bench: Tables XVI/XVII — edge CPU vs GPU inference latency."""

from conftest import run_once, show

from repro.experiments import cpu_vs_gpu


def test_table16_17_cpu_vs_gpu(benchmark):
    prefill_rows = run_once(benchmark, cpu_vs_gpu.run_table16)
    decode_rows = cpu_vs_gpu.run_table17()
    show(cpu_vs_gpu.table16(prefill_rows))
    show(cpu_vs_gpu.table17(decode_rows))
    # Prefill: two-orders-of-magnitude GPU advantage (compute bound).
    assert all(100 < row.speedup < 600 for row in prefill_rows)
    # Decode: ~5x GPU advantage (CPU's share of LPDDR5 bandwidth).
    assert all(3.5 < row.speedup < 7.0 for row in decode_rows)
