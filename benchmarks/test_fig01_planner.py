"""Bench: Fig. 1 — the continuous planner frontier over latency budgets."""

from conftest import run_once, show

from repro.experiments import planner_study


def test_fig01_planner_frontier(benchmark):
    decisions = run_once(benchmark, planner_study.run_planner_frontier, seed=0)
    show(planner_study.planner_table(decisions))
    show(planner_study.figure1(decisions))
    feasible = [d for d in decisions if d.feasible]
    assert len(feasible) >= 8
    # Every decision respects its budget.
    for decision in feasible:
        assert decision.predicted_latency_s <= decision.latency_budget_s
    # Accuracy is monotone in the budget (more time never hurts).
    accuracies = [d.predicted_accuracy for d in decisions]
    assert accuracies == sorted(accuracies)
    # The frontier spans real-time (~1 s) to deep-reasoning (~300 s)
    # operating points, ending at the 14B's peak accuracy.
    assert feasible[-1].predicted_accuracy > 0.78
