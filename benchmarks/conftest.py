"""Shared infrastructure for the benchmark harness.

Each bench regenerates one paper artifact (table or figure), prints the
same rows/series the paper reports, and times the run via
pytest-benchmark.  Expensive shared inputs (the Section IV model
characterizations, the Section V tradeoff grid) are computed once per
session.
"""

from __future__ import annotations

import warnings

import pytest

from repro.experiments import prefill_latency, quantization, tradeoff_frontier
from repro.experiments.runner import render

warnings.filterwarnings("ignore", category=Warning, module="scipy")


def run_once(benchmark, func, *args, **kwargs):
    """Time ``func`` with a single round (experiments are deterministic)."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs,
                              rounds=1, iterations=1)


def show(output) -> None:
    """Print an artifact the way the paper reports it."""
    print()
    print(render(output))


@pytest.fixture(scope="session")
def characterizations():
    """Section IV sweeps + fits for the three DSR1 models."""
    return prefill_latency.run_characterizations()


@pytest.fixture(scope="session")
def quantized_characterizations():
    """Section V-F sweeps + fits for the AWQ-W4 variants."""
    return quantization.run_quantized_characterizations()


@pytest.fixture(scope="session")
def tradeoff_results():
    """The full Section V configuration grid over MMLU-Redux (3k)."""
    return tradeoff_frontier.run_tradeoff_grid(seed=0, size=3000)
