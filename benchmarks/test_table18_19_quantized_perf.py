"""Bench: Tables XVIII/XIX — base vs quantized prefill/decode averages."""

from conftest import run_once, show

from repro.experiments import quantization


def test_table18_19_quantized_perf(benchmark):
    prefill_table, decode_table = run_once(benchmark, quantization.table18_19,
                                           seed=0)
    show(prefill_table)
    show(decode_table)
    decode = {row[0]: row for row in decode_table.rows}
    # Table XIX shape: quantized throughput is 2-3x the FP16 counterpart.
    for base_name, awq_name in (
            ("dsr1-qwen-1.5b", "dsr1-qwen-1.5b-awq-w4"),
            ("dsr1-llama-8b", "dsr1-llama-8b-awq-w4"),
            ("dsr1-qwen-14b", "dsr1-qwen-14b-awq-w4")):
        tok_per_s_base = decode[base_name][2]
        tok_per_s_awq = decode[awq_name][2]
        assert 1.5 < tok_per_s_awq / tok_per_s_base < 3.5
