"""Bench: Fig. 10 — parallel-scaling latency, energy, power, utilization."""

from conftest import run_once, show

from repro.experiments import parallel_scaling


def test_fig10_parallel_system(benchmark):
    latency_fig, energy_fig, power_fig = run_once(
        benchmark, parallel_scaling.figure10, seed=0, output_budget=128)
    show(latency_fig)
    show(energy_fig)
    show(power_fig)
    for series in latency_fig.series:
        # Fig. 10a: roughly 2x latency from SF=1 to SF=64.
        ratio = series.y[-1] / series.y[0]
        assert 1.4 < ratio < 2.6, series.label
    busy = {s.label: s for s in power_fig.series if "gpu_busy" in s.label}
    for series in busy.values():
        # Fig. 10c: GPU utilization rises (linearly) with scale factor.
        assert series.y[-1] > series.y[0]
    power = {s.label: s for s in power_fig.series
             if "busy" not in s.label and "dram" not in s.label}
    # Power rises with scaling: ~14->25 W (1.5B), ~25->35 W (8B/14B) band.
    assert power["dsr1-qwen-1.5b"].y[-1] > power["dsr1-qwen-1.5b"].y[0] + 5
