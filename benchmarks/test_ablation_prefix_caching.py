"""Ablation bench: prefix caching on few-shot planning prompts."""

from conftest import run_once, show

from repro.experiments import prefix_caching


def test_ablation_prefix_caching(benchmark):
    rows = run_once(benchmark, prefix_caching.run_prefix_caching_study)
    show(prefix_caching.prefix_caching_table(rows))
    for row in rows:
        # Multi-x prefill win from the shared few-shot prefix...
        assert row.prefill_speedup > 1.5
        # ...but a tiny end-to-end effect: decode dominates
        # (Takeaway #2 restated as an optimization bound).
        assert row.end_to_end_speedup < 1.05
