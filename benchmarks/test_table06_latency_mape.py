"""Bench: Table VI — held-out MAPE of the fitted latency models."""

from conftest import run_once, show

from repro.experiments import latency_validation


def test_table06_latency_mape(benchmark, characterizations):
    rows = run_once(benchmark, latency_validation.run_table6, characterizations)
    show(latency_validation.table6(rows))
    for row in rows:
        # Paper: total MAPE under 2% across all models.
        assert row.total_mape < 2.0
        assert row.decode_mape < 2.0
        # Prefill MAPE is several percent (tile-padding mismatch).
        assert row.prefill_mape < 20.0
