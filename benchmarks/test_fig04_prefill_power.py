"""Bench: Fig. 4 — prefill power and energy per token vs input length."""

import numpy as np
from conftest import run_once, show

from repro.experiments import power_energy


def test_fig04_prefill_power(benchmark, characterizations):
    power_fig, energy_fig = run_once(benchmark, power_energy.figure4,
                                     characterizations)
    for figure in (power_fig, energy_fig):
        for series in figure.series:
            condensed = type(series)(series.label, series.x[::8], series.y[::8])
            print(condensed.to_text("I", figure.y_label))
    by_label = {s.label: s for s in power_fig.series}
    # 8B/14B exceed 20 W at 4K input; the 1.5B stays under 10 W.
    assert by_label["dsr1-llama-8b"].y[-1] > 18
    assert by_label["dsr1-qwen-14b"].y[-1] > 20
    assert max(by_label["dsr1-qwen-1.5b"].y) < 10
    # Energy per token: smaller models consistently more efficient.
    energy = {s.label: np.mean(s.y) for s in energy_fig.series}
    assert energy["dsr1-qwen-1.5b"] < energy["dsr1-llama-8b"] < energy["dsr1-qwen-14b"]
