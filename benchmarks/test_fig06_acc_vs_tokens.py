"""Bench: Fig. 6 — accuracy vs average output length across controls."""

from conftest import run_once, show

from repro.experiments import tradeoff_frontier


def test_fig06_accuracy_vs_tokens(benchmark, tradeoff_results):
    figure = run_once(benchmark, tradeoff_frontier.figure6, tradeoff_results)
    show(figure)
    by_label = {r.label: r for r in tradeoff_results}
    # Crossover pair from Section V-A: 8B Base (~811 tokens) beats
    # 14B 128T (~91 tokens) — depth compensates for scale...
    assert (by_label["DSR1-Llama-8B Base"].accuracy
            > by_label["DSR1-Qwen-14B 128T"].accuracy)
    # ...while 14B 256-NC (~374 tokens) beats 8B Base — scale
    # compensates for depth.
    assert (by_label["DSR1-Qwen-14B 256 (NC)"].accuracy
            > by_label["DSR1-Llama-8B Base"].accuracy)
