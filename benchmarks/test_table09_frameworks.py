"""Bench: Table IX — HF Transformers vs vLLM vs TRT-LLM."""

from conftest import run_once, show

from repro.experiments import frameworks


def test_table09_frameworks(benchmark):
    rows = run_once(benchmark, frameworks.run_table9)
    show(frameworks.table9(rows))
    for row in rows:
        # Paper: vLLM 1.11-1.13x over HFT; TRT-LLM on par with vLLM.
        assert 1.05 < row.speedup_over("vllm") < 1.25
        assert abs(row.latencies_s["trt-llm"] / row.latencies_s["vllm"] - 1.0) < 0.1
