"""Bench: Fig. 2 + Table IV — prefill latency sweep and quadratic fit."""

import pytest
from conftest import run_once, show

from repro.core.latency_model import PAPER_PREFILL_COEFFICIENTS
from repro.experiments import prefill_latency


def test_fig02_table04_prefill(benchmark, characterizations):
    table = run_once(benchmark, prefill_latency.table4, characterizations)
    show(table)
    figure = prefill_latency.figure2(characterizations)
    # Print a condensed view of Fig. 2 (every 8th point).
    for series in figure.series:
        condensed = type(series)(series.label, series.x[::8], series.y[::8])
        print(condensed.to_text("I", "s"))
    for name, result in characterizations.items():
        paper = PAPER_PREFILL_COEFFICIENTS[name]
        fitted = result.latency.prefill
        # The fitted quadratic coefficient lands near Table IV.
        assert fitted.a == pytest.approx(paper.a, rel=0.6)
        assert fitted.c == pytest.approx(paper.c, rel=0.5)
