"""Bench: Table II — reasoning vs non-reasoning on 150 MMLU-Redux questions."""

from conftest import run_once, show

from repro.experiments import motivation


def test_table02_motivation(benchmark):
    rows = run_once(benchmark, motivation.run_table2, seed=0, questions=150)
    show(motivation.table2(rows))
    by_model = {r.model: r for r in rows}
    # Shape checks mirroring Section III-A's claims.
    assert by_model["DSR1-Qwen-14B"].accuracy_pct > \
        by_model["Qwen2.5-7B-it"].accuracy_pct + 10
    assert (by_model["DSR1-Llama-8B"].decode_time_s
            > 10 * by_model["Llama3.1-8B-it"].decode_time_s)
