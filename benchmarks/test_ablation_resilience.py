"""Ablation bench: chaos sweep with and without graceful degradation.

Encodes the resilience layer's acceptance criteria: a seeded fault
schedule over an overload stream completes with zero unhandled
exceptions, shows nonzero throttle residency, at least one
preemption-and-resume and one successful retry, a strictly better
deadline hit rate with degradation enabled, and bit-identical reports
across two same-seed runs.
"""

from conftest import run_once, show

from repro.experiments import resilience


def test_ablation_resilience_chaos(benchmark):
    points = run_once(benchmark, resilience.run_chaos_study, seed=0)
    show(resilience.resilience_table(points))
    off, on = (p.report for p in points)

    # The fault schedule actually bit: clocks were derated and the
    # engine lost requests that needed recovery.
    assert on.throttle_residency_s > 0
    assert on.thermal_throttle_events >= 1
    assert on.injected_aborts >= 1

    # The resilience machinery engaged: KV exhaustion was survived via
    # preemption + recompute-on-resume, and retries recovered aborts.
    assert on.preemptions >= 1
    assert on.resumes >= 1
    assert on.retries >= 1
    assert on.successful_retries >= 1

    # Degradation strictly improves the offered-population hit rate.
    assert on.deadline_hit_rate > off.deadline_hit_rate
    assert on.failed <= off.failed
    assert on.tokens_saved > 0

    # Deterministic: an identical-seed rerun reproduces both reports.
    rerun = resilience.run_chaos_study(seed=0)
    assert rerun[0].report == off
    assert rerun[1].report == on
