"""Bench: Fig. 9 — voted accuracy vs parallel scaling factor."""

from conftest import run_once, show

from repro.experiments import parallel_scaling


def test_fig09_parallel_accuracy(benchmark):
    fig_a, fig_b = run_once(benchmark, parallel_scaling.figure9,
                            seed=0, size=3000)
    show(fig_a)
    show(fig_b)
    series_128 = {s.label: s for s in fig_a.series}
    series_512 = {s.label: s for s in fig_b.series}
    # Fig. 9a: 1.5-1.8x gains from 1x to 32x at the 128-token budget.
    for name in ("dsr1-qwen-1.5b", "dsr1-qwen-14b"):
        gain = series_128[name].y[-1] / series_128[name].y[0]
        assert 1.4 < gain < 2.1, name
    # Fig. 9b: gains plateau after ~4-8x at the 512-token budget.
    y14 = series_512["dsr1-qwen-14b"].y
    assert y14[-1] - y14[3] < 0.06
    # L1 variants show negligible benefit from parallel scaling.
    l1 = series_128["l1-max"].y
    assert max(l1) - l1[0] < 0.05
