"""Bench: Figs. 11-13 — quantized prefill/decode latency, power, energy."""

import numpy as np
from conftest import run_once, show

from repro.experiments import quantization


def test_fig11_13_quantized_sweeps(benchmark, characterizations,
                                   quantized_characterizations):
    prefill_fig, decode_fig = run_once(benchmark, quantization.figure11,
                                       quantized_characterizations)
    show(decode_fig)
    power_pair = quantization.figure12(quantized_characterizations)
    energy_pair = quantization.figure13(quantized_characterizations)
    for fig in (*power_pair, *energy_pair):
        assert len(fig.series) == 3
    # Quantized models are faster and cheaper per token than FP16
    # (Figs. 11-13 vs Figs. 2-5).
    for fp16_name, awq_name in (
            ("dsr1-qwen-1.5b", "dsr1-qwen-1.5b-awq-w4"),
            ("dsr1-llama-8b", "dsr1-llama-8b-awq-w4"),
            ("dsr1-qwen-14b", "dsr1-qwen-14b-awq-w4")):
        fp16 = characterizations[fp16_name].decode_sweep
        awq = quantized_characterizations[awq_name].decode_sweep
        assert awq.seconds.sum() < fp16.seconds.sum()
        assert (np.mean(awq.energy_per_token_j)
                < np.mean(fp16.energy_per_token_j))
