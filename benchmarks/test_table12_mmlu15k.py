"""Bench: Table XII — base/budgeted/quantized DSR1 models on MMLU (15k)."""

import pytest
from conftest import run_once, show

from repro.experiments import mmlu_full


def test_table12_mmlu15k(benchmark):
    results = run_once(benchmark, mmlu_full.run_table12, seed=0, size=15000)
    show(mmlu_full.table12(results))
    by_key = {(r.model, r.control.label): r for r in results}
    # Paper anchor rows.
    assert by_key[("dsr1-qwen-14b", "Base")].accuracy * 100 == pytest.approx(
        86.59, abs=4.0)
    assert by_key[("dsr1-qwen-14b", "128T")].accuracy * 100 == pytest.approx(
        28.3, abs=2.0)
    assert by_key[("dsr1-llama-8b-awq-w4", "256T")].accuracy * 100 == \
        pytest.approx(43.5, abs=2.0)
    # Quantization barely moves base MMLU accuracy (Table XII).
    fp16 = by_key[("dsr1-qwen-14b", "Base")].accuracy
    awq = by_key[("dsr1-qwen-14b-awq-w4", "Base")].accuracy
    assert abs(fp16 - awq) < 0.03
