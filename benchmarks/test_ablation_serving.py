"""Ablation bench: serving cost/latency vs offered QPS (Section III-B)."""

from conftest import run_once, show

from repro.experiments import serving_study


def test_ablation_serving_qps(benchmark):
    points = run_once(benchmark, serving_study.run_serving_study,
                      qps_levels=(0.05, 0.1, 0.2, 0.4, 0.8),
                      num_requests=80)
    show(serving_study.serving_table(points))
    costs = [p.usd_per_mtok for p in points]
    # "Edge deployment costs also benefit from batching and increased
    # QPS": cost per token falls monotonically with offered load...
    assert costs == sorted(costs, reverse=True)
    assert costs[0] / costs[-1] > 5
    # ...while the p95 latency penalty stays modest below saturation.
    assert points[-1].p95_latency_s < 2 * points[0].p95_latency_s
