"""Bench: Fig. 14 — quantized vs FP16 accuracy, tokens, latency."""

from conftest import run_once, show

from repro.experiments import quantization


def test_fig14_quantized_accuracy(benchmark):
    rows = run_once(benchmark, quantization.run_figure14, seed=0, size=3000)
    show(quantization.figure14(rows))
    # Takeaway #11: minor accuracy loss, 2-5x latency gains that grow
    # with model size.
    for row in rows:
        assert abs(row.relative_accuracy_loss_pct) < 10.0
        assert row.awq_tokens <= row.fp16_tokens * 1.05
    speedups = [row.latency_speedup for row in rows]
    assert speedups[0] < speedups[2]
    assert all(1.2 < s < 5.5 for s in speedups)
