"""Bench: Fig. 7 — accuracy vs latency and the operational regimes."""

from conftest import run_once, show

from repro.experiments import tradeoff_frontier


def test_fig07_accuracy_vs_latency(benchmark, tradeoff_results):
    figure = run_once(benchmark, tradeoff_frontier.figure7, tradeoff_results)
    show(figure)
    regimes = tradeoff_frontier.latency_regimes(tradeoff_results)
    for regime in regimes:
        print(f"{regime.band:>8s}: {regime.best_label} "
              f"({regime.best_accuracy * 100:.1f}%)")
    bands = {r.band: r for r in regimes}
    # Sub-5s: small/direct models only; >30s: the 14B reasoning model.
    assert "14B Base" in bands[">30s"].best_label or \
        "14B" in bands[">30s"].best_label
    assert bands["<5s"].best_accuracy < bands[">30s"].best_accuracy
    by_label = {r.label: r for r in tradeoff_results}
    # Takeaway #4: only 1.5B-class models (incl. L1) decode in ~1 s.
    fast = [r for r in tradeoff_results if r.mean_latency_seconds < 1.5]
    assert fast and all("1.5B" in r.display_name or "L1" in r.display_name
                        for r in fast)
