"""Bench: Table III — edge vs cloud cost on the AIME2024 workload."""

from conftest import run_once, show

from repro.experiments import motivation


def test_table03_edge_cloud(benchmark):
    rows = run_once(benchmark, motivation.run_table3, seed=0)
    show(motivation.table3(rows))
    edge_single, edge_batched, cloud = rows
    # Two-orders-of-magnitude cost advantage; batching cuts it further.
    assert cloud.price_usd_per_mtok / edge_single.price_usd_per_mtok > 50
    assert edge_batched.price_usd_per_mtok < edge_single.price_usd_per_mtok / 3
    assert edge_single.accuracy_aime_pct > cloud.accuracy_aime_pct
