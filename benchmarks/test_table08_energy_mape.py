"""Bench: Table VIII + Tables XX/XXI — energy model MAPE and coefficients."""

from conftest import run_once, show

from repro.experiments import power_energy


def test_table08_energy_models(benchmark, characterizations):
    rows = run_once(benchmark, power_energy.run_table8, characterizations)
    show(power_energy.table8(rows))
    show(power_energy.table20(characterizations))
    show(power_energy.table21(characterizations))
    for row in rows:
        # Paper reports ~6% energy-model MAPE; single digits here.
        assert row.decode_mape < 10.0
        assert row.total_mape < 10.0
    # Table XXI structure: decode power log slopes are positive and grow
    # with model size.
    slopes = [characterizations[m].decode_power.w
              for m in ("dsr1-qwen-1.5b", "dsr1-llama-8b")]
    assert 0 < slopes[0] < slopes[1]
