"""Bench: Table VII — prefill-to-decode ratios over full MMLU-Redux."""

from conftest import run_once, show

from repro.experiments import pd_ratio


def test_table07_pd_ratio(benchmark):
    rows = run_once(benchmark, pd_ratio.run_table7, seed=0, size=3000)
    show(pd_ratio.table7(rows))
    for row in rows:
        # Takeaway #2: decode dominates >99% of inference time with
        # latency ratios in the hundreds.
        assert row.latency_ratio > 150
        assert row.decode_time_share > 0.99
        assert 2.0 < row.token_ratio < 12.0
