"""Bench: machine-check all eleven paper takeaways."""

from conftest import run_once, show

from repro.experiments import takeaways


def test_all_takeaways_hold(benchmark):
    checks = run_once(benchmark, takeaways.run_takeaway_checks,
                      seed=0, size=1500)
    show(takeaways.takeaways_table(checks))
    assert len(checks) == 11
    failing = [check.number for check in checks if not check.holds]
    assert not failing, f"takeaways failing: {failing}"
