"""Ablation bench: Section VI optimization headroom projections."""

from conftest import run_once, show

from repro.experiments import optimizations


def test_ablation_section6_optimizations(benchmark):
    spec_table, offload_table, prefetch_table, fusion_table = run_once(
        benchmark, optimizations.optimizations_report)
    show(spec_table)
    show(offload_table)
    show(prefetch_table)
    show(fusion_table)
    # Speculative decoding is the big lever for bandwidth-bound decode.
    assert max(spec_table.column("Speedup")) > 1.4
    # CPU offload is modest; DLA is a no-op at batch 1 (the paper's idle
    # engines cannot help a bandwidth-bound phase) but helps at B=512.
    for row in offload_table.rows:
        assert 1.0 < row[1] < 1.3
        assert abs(row[2] - 1.0) < 0.05
    # Prefetch: prefill-only benefit.
    for row in prefetch_table.rows:
        assert row[1] > 1.0
        assert abs(row[3] - 1.0) < 0.05
    # Fusion: deflates the quadratic prefill term (multi-x at 4K input),
    # near-nothing for the weight-stream-bound decode.
    for row in fusion_table.rows:
        assert row[2] > 3.0
        assert row[3] < 1.15
