"""Bench: Tables X/XI — the full MMLU-Redux configuration grid."""

import pytest
from conftest import run_once, show

from repro.experiments import tradeoff_frontier

#: (label, paper accuracy %, paper avg tokens) anchor rows.
PAPER_ROWS = [
    ("DSR1-Qwen-1.5B Base", 38.3, 740.2),
    ("DSR1-Llama-8B Base", 61.7, 811.1),
    ("DSR1-Qwen-14B Base", 80.6, 1317.8),
    ("DSR1-Llama-8B 128T", 37.9, 76.3),
    ("DSR1-Qwen-14B 256T", 58.6, 112.9),
    ("DSR1-Qwen-1.5B NR", 41.0, 234.9),
    ("L1-Max 128T", 16.2, 40.7),
    ("Llama3.1-8B-it Direct", 58.3, 63.5),
]


def test_table10_11_mmlu_redux(benchmark, tradeoff_results):
    table10 = run_once(benchmark, tradeoff_frontier.table10, tradeoff_results)
    show(table10)
    show(tradeoff_frontier.table11(tradeoff_results))
    by_label = {r.label: r for r in tradeoff_results}
    for label, paper_acc, paper_tokens in PAPER_ROWS:
        result = by_label[label]
        assert result.accuracy * 100 == pytest.approx(paper_acc, abs=3.0), label
        assert result.mean_output_tokens == pytest.approx(
            paper_tokens, rel=0.15), label
