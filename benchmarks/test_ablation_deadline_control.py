"""Ablation bench: online deadline control vs static budgets."""

from conftest import run_once, show

from repro.experiments import deadline_control


def test_ablation_deadline_control(benchmark):
    rows = run_once(benchmark, deadline_control.run_deadline_study, seed=0)
    show(deadline_control.deadline_table(rows))
    by_policy = {row.policy: row for row in rows}
    # The intro's failure mode: naive static provisioning misses deadlines.
    assert by_policy["static @ median prompt"].miss_rate > 0.15
    # The online controller eliminates misses at thinking parity.
    controller = by_policy["online controller"]
    assert controller.miss_rate == 0.0
    assert controller.p99_latency_s <= controller.deadline_s
    assert (controller.mean_thinking_tokens
            > 0.9 * by_policy["static @ p95 prompt"].mean_thinking_tokens)
