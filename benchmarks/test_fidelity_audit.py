"""Bench: the machine-checkable fidelity audit (paper vs repo)."""

from conftest import run_once, show

from repro.experiments import fidelity


def test_fidelity_audit(benchmark):
    entries = run_once(benchmark, fidelity.run_fidelity_audit,
                       seed=0, size=3000)
    show(fidelity.fidelity_table(entries))
    # Every audited metric stays within 10% of the paper's value; the
    # decode coefficients within 1%.
    assert fidelity.worst_deviation_pct(entries) < 10.0
    decode = [e for e in entries if "decode" in e.metric]
    assert all(abs(e.deviation_pct) < 1.0 for e in decode)
