"""Bench: Fig. 5 — decode power and energy per token vs output length."""

import numpy as np
from conftest import run_once, show

from repro.experiments import power_energy


def test_fig05_decode_power(benchmark, characterizations):
    power_fig, energy_fig = run_once(benchmark, power_energy.figure5,
                                     characterizations)
    show(power_fig)
    show(energy_fig)
    for series in power_fig.series:
        # Power grows (logarithmically) with output length.
        assert series.y[-1] > series.y[0]
    energy = {s.label: np.mean(s.y) for s in energy_fig.series}
    # Fig. 5: multi-x energy/token gap between the 1.5B and 14B.
    assert energy["dsr1-qwen-14b"] / energy["dsr1-qwen-1.5b"] > 4
